"""Performance-regression harness behind ``repro bench``.

Measures three things the rest of the repo optimises for and emits them as a
single ``BENCH_<date>.json`` report:

* per-scheme compress/decompress throughput (MB/s) over workloads crafted to
  select each scheme family, plus the achieved compression ratios;
* parallel scaling of the block-level ``(column, block)`` pipeline on a
  single wide column, per worker count;
* scheme-selection overhead as a percentage of total compression time, with
  and without the sticky selection cache;
* the fetch-vs-decode overlap of a pipelined cloud scan against the
  simulated object store — how much of the serial (fetch + decode) time the
  readahead window hides, i.e. whether the scan is network- or CPU-bound
  at this decode speed (paper Fig. 1);
* a selectivity sweep of the zone-map-pruned remote scan (``selective_scan``
  section, printed by ``repro bench --selective-scan``): bytes fetched and
  wall seconds at ~1/10/50/100% selectivity over a clustered table, showing
  bytes moved scaling with selectivity rather than table size;
* a selectivity sweep of the compressed-domain filtered scan
  (``compressed_scan`` section, printed by ``repro bench
  --compressed-scan``): :func:`repro.query.executor.filter_column` vs
  decompress-then-filter at ~1/10/50/100% selectivity over bit-packed, RLE
  and dictionary data, with the ``query.cdomain.*`` counters showing decode
  work scaling with selectivity rather than block size.

CI runs this scaled down (``--rows``) and compares the fresh report against
the committed ``benchmarks/BENCH_baseline.json``: any throughput metric more
than ``threshold`` (default 30%) below the baseline fails the job — both
compress and decompress MB/s are gated. Ratios and scheme choices are
reported for inspection but not gated — they are covered bit-exactly by the
golden fixtures. ``--decode-only`` restricts the run to the read path
(scheme decompression + the pipelined scan), for quickly iterating on
decode changes without paying the compress-side measurements.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.core.relation import Relation
from repro.observe import MetricsRegistry, use_registry
from repro.parallel import compress_relation_parallel, decompress_relation_parallel
from repro.types import Column

DEFAULT_ROWS = 200_000
#: The parallel section needs enough work per call that a single-worker run
#: is well past clock noise (>= 50 ms wall); at smaller ``--rows`` the
#: scaling workload is scaled *up* to this floor independently.
DEFAULT_PARALLEL_ROWS = 1_000_000
DEFAULT_WORKERS = (1, 2, 4)
DEFAULT_REPEATS = 3
DEFAULT_THRESHOLD = 0.30
DEFAULT_SEED = 42


def _cpu_affinity() -> "int | None":
    """Usable CPUs for this process (container/cgroup-aware), else None."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return None


def default_bench_backends() -> "tuple[str, ...]":
    """Backends worth measuring on this host: thread always; process when
    the pool exists and more than one CPU is actually usable."""
    from repro import procpool

    affinity = _cpu_affinity() or os.cpu_count() or 1
    if procpool.available() and affinity >= 2:
        return ("thread", "process")
    return ("thread",)


def _mb(nbytes: float) -> float:
    return nbytes / 1e6


_MIN_WINDOW_SECONDS = 0.01


def _best_seconds(fn: Callable[[], object], repeats: int) -> float:
    """Fastest per-call time over ``repeats`` measurements.

    Fast operations are looped until each timing window reaches
    ``_MIN_WINDOW_SECONDS``; otherwise sub-millisecond measurements (e.g.
    one_value decompression at smoke scale) are clock-noise and would make
    the CI regression gate flaky.
    """
    started = time.perf_counter()
    fn()
    calibration = time.perf_counter() - started
    iterations = max(1, int(_MIN_WINDOW_SECONDS / max(calibration, 1e-9)))
    best = calibration
    for _ in range(max(repeats, 1)):
        started = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - started) / iterations)
    return best


# -- scheme-targeted workloads -------------------------------------------------

def _w_one_value(rows: int, rng: np.random.Generator) -> Column:
    return Column.ints("v", np.full(rows, 7, dtype=np.int64))


def _w_rle(rows: int, rng: np.random.Generator) -> Column:
    return Column.ints("v", np.repeat(rng.integers(0, 1000, (rows + 19) // 20), 20)[:rows])


def _w_frequency(rows: int, rng: np.random.Generator) -> Column:
    values = np.where(rng.random(rows) < 0.9, 42, rng.integers(0, 10_000, rows))
    return Column.ints("v", values)


def _w_bitpack(rows: int, rng: np.random.Generator) -> Column:
    return Column.ints("v", rng.integers(0, 255, rows))


def _w_fastpfor(rows: int, rng: np.random.Generator) -> Column:
    values = rng.integers(0, 64, rows)
    outliers = rng.random(rows) < 0.02
    values[outliers] = rng.integers(2**20, 2**28, int(outliers.sum()))
    return Column.ints("v", values)


def _w_pseudodecimal(rows: int, rng: np.random.Generator) -> Column:
    return Column.doubles("v", np.round(rng.uniform(0, 10_000, rows), 2))


def _w_dictionary(rows: int, rng: np.random.Generator) -> Column:
    vocab = [f"category-{i:04d}" for i in range(256)]
    return Column.strings("v", [vocab[i] for i in rng.integers(0, len(vocab), rows)])


def _w_fsst(rows: int, rng: np.random.Generator) -> Column:
    hosts = ["example.com", "data-lake.io", "btrblocks.org"]
    return Column.strings(
        "v",
        [
            f"https://{hosts[i % 3]}/api/v2/resource/{int(x):08x}?session={int(y):06d}"
            for i, (x, y) in enumerate(
                zip(rng.integers(0, 2**31, rows), rng.integers(0, 1_000_000, rows))
            )
        ],
    )


SCHEME_WORKLOADS: dict[str, Callable[[int, np.random.Generator], Column]] = {
    "one_value": _w_one_value,
    "rle": _w_rle,
    "frequency": _w_frequency,
    "bitpack": _w_bitpack,
    "fastpfor": _w_fastpfor,
    "pseudodecimal": _w_pseudodecimal,
    "dictionary": _w_dictionary,
    "fsst": _w_fsst,
}


def bench_schemes(rows: int, repeats: int, seed: int, decode_only: bool = False) -> dict:
    """Compress/decompress throughput per scheme-targeted workload.

    ``decode_only`` skips the compress-side timing (each workload is still
    compressed once to produce the artifact being decoded).
    """
    out: dict[str, dict] = {}
    for name, make in SCHEME_WORKLOADS.items():
        rng = np.random.default_rng(seed)
        relation = Relation(name, [make(rows, rng)])
        compressed = compress_relation(relation)
        decompress_seconds = _best_seconds(lambda: decompress_relation(compressed), repeats)
        schemes: dict[str, int] = {}
        for column in compressed.columns:
            for scheme, count in column.scheme_histogram().items():
                schemes[scheme] = schemes.get(scheme, 0) + count
        entry = {
            "rows": relation.row_count,
            "input_mb": _mb(relation.nbytes),
            "ratio": relation.nbytes / compressed.nbytes if compressed.nbytes else None,
            "decompress_mb_s": _mb(relation.nbytes) / decompress_seconds,
            "schemes_used": schemes,
        }
        if not decode_only:
            compress_seconds = _best_seconds(lambda: compress_relation(relation), repeats)
            entry["compress_mb_s"] = _mb(relation.nbytes) / compress_seconds
        out[name] = entry
    return out


def bench_parallel(
    rows: int,
    workers: Sequence[int],
    repeats: int,
    seed: int,
    backends: "Sequence[str] | None" = None,
) -> dict:
    """Block-level scaling on one wide column, per backend and worker count.

    Speedups are relative to each backend's ``workers=1`` run (the inline,
    pool-free path — identical work on every backend). Real scaling needs
    real cores: threads measure GIL-serialised work plus pool overhead,
    the process backend is what actually multiplies — so both
    ``cpu_count`` and ``cpu_affinity`` (the usable subset in containers)
    are recorded alongside for interpretation. Callers should size ``rows``
    so the single-worker wall is comfortably past clock noise
    (:data:`DEFAULT_PARALLEL_ROWS`); ``run_bench`` does this independently
    of the scheme-bench row count.
    """
    from repro import procpool

    if backends is None:
        backends = default_bench_backends()
    rng = np.random.default_rng(seed)
    # Three numeric columns spanning fast (RLE) and slow (FastPFOR,
    # pseudodecimal) decoders: at DEFAULT_PARALLEL_ROWS the single-worker
    # decompress wall is comfortably past 50ms, so per-worker deltas
    # measure scaling rather than clock noise.
    relation = Relation(
        "wide", [_w_rle(rows, rng), _w_fastpfor(rows, rng), _w_pseudodecimal(rows, rng)]
    )
    compressed = compress_relation_parallel(relation, max_workers=1)
    input_mb = _mb(relation.nbytes)
    by_backend: dict[str, dict] = {}
    try:
        for backend in backends:
            compress_seconds: dict[str, float] = {}
            decompress_seconds: dict[str, float] = {}
            for count in workers:
                compress_seconds[str(count)] = _best_seconds(
                    lambda: compress_relation_parallel(
                        relation, max_workers=count, backend=backend
                    ),
                    repeats,
                )
                decompress_seconds[str(count)] = _best_seconds(
                    lambda: decompress_relation_parallel(
                        compressed, max_workers=count, backend=backend
                    ),
                    repeats,
                )
            base = compress_seconds.get("1")
            decompress_base = decompress_seconds.get("1")
            by_backend[backend] = {
                "compress_seconds": compress_seconds,
                "decompress_seconds": decompress_seconds,
                "compress_mb_s": {
                    k: input_mb / v for k, v in compress_seconds.items()
                },
                "decompress_mb_s": {
                    k: input_mb / v for k, v in decompress_seconds.items()
                },
                "compress_speedup": {
                    k: base / v for k, v in compress_seconds.items()
                } if base else {},
                "decompress_speedup": {
                    k: decompress_base / v for k, v in decompress_seconds.items()
                } if decompress_base else {},
            }
    finally:
        if "process" in backends:
            procpool.shutdown_pool()
    return {
        "rows": relation.row_count,
        "input_mb": input_mb,
        "cpu_count": os.cpu_count(),
        "cpu_affinity": _cpu_affinity(),
        "backends": by_backend,
    }


def bench_selection(rows: int, seed: int) -> dict:
    """Selection overhead (% of compression time) and sticky-cache effect."""
    rng = np.random.default_rng(seed)
    relation = Relation(
        "sel",
        [_w_rle(rows, rng), _w_frequency(rows, rng), _w_pseudodecimal(rows, rng)],
    )

    def run(config: BtrBlocksConfig) -> dict:
        registry = MetricsRegistry()
        with use_registry(registry):
            compress_relation(relation, config)
        counters = registry.snapshot()["counters"]
        total = registry.timer_seconds("compress")
        selection = registry.timer_seconds("selection.outer")
        return {
            "compress_seconds": total,
            "selection_seconds": selection,
            "selection_overhead_pct": 100.0 * selection / total if total else None,
            "sticky_hits": counters.get("selector.sticky.hits", 0),
            "sticky_misses": counters.get("selector.sticky.misses", 0),
        }

    return {
        "full": run(BtrBlocksConfig()),
        "sticky": run(BtrBlocksConfig(sticky_selection=True)),
    }


def bench_pipeline(rows: int, seed: int, readahead: int | None = None) -> dict:
    """Fetch-vs-decode overlap of a pipelined scan against the simulated store.

    Uploads a small table (one integer column per packing-heavy workload)
    and scans it with :func:`~repro.cloud.scan.
    scan_btrblocks_columns_pipelined`. The returned breakdown separates
    simulated fetch time from measured decode time and reports how much of
    their serial sum the readahead window hides — the paper's Fig. 1
    network/CPU-bound crossover for this host's decode speed. Fetch times
    come from the pricing model's constants and decode times from this
    machine, so like the ``parallel`` section the numbers are reported but
    never gated.
    """
    from repro.cloud import SimulatedObjectStore
    from repro.cloud.scan import scan_btrblocks_columns_pipelined, upload_btrblocks
    from repro.core.config import DEFAULT_SCAN_READAHEAD

    if readahead is None:
        readahead = DEFAULT_SCAN_READAHEAD
    rng = np.random.default_rng(seed)
    relation = Relation("pipe", [
        Column.ints("bp", _w_bitpack(rows, rng).data),
        Column.ints("rl", _w_rle(rows, rng).data),
    ])
    compressed = compress_relation(relation)
    store = SimulatedObjectStore()
    upload_btrblocks(store, compressed)
    registry = MetricsRegistry()
    with use_registry(registry):
        _result, report = scan_btrblocks_columns_pipelined(
            store, relation.name, [0, 1], readahead=readahead
        )
    return {
        "rows": relation.row_count,
        "input_mb": _mb(relation.nbytes),
        "compressed_mb": _mb(compressed.nbytes),
        **report.to_dict(),
    }


def bench_selective_scan(rows: int, seed: int, block_size: int = 4000) -> dict:
    """Bytes fetched and decode time across a selectivity sweep.

    Commits a clustered table (sort key + double payload) through
    :class:`~repro.cloud.remote_table.TableWriter`, then runs
    ``scan(where=Between(...))`` at ~1% / 10% / 50% / 100% selectivity with a
    cold :class:`RemoteTable` per point, so every byte a query needs is a
    fresh GET. With the manifest zone maps doing their job, bytes fetched
    scale with selectivity instead of table size — the paper's pruning
    story (Section 2.1) made measurable. Like ``pipeline``, the numbers are
    reported, never gated.
    """
    from repro.cloud import SimulatedObjectStore
    from repro.cloud.remote_table import RemoteTable, TableWriter
    from repro.query.predicates import Between

    rng = np.random.default_rng(seed)
    keys = np.sort(rng.integers(0, 1_000_000, rows)).astype(np.int32)
    payload = rng.uniform(0.0, 1000.0, rows)
    relation = Relation("selective", [
        Column.ints("k", keys),
        Column.doubles("payload", payload),
    ])
    compressed = compress_relation(relation, BtrBlocksConfig(block_size=block_size))
    store = SimulatedObjectStore()
    TableWriter(store).write(compressed)

    sweep = {}
    lo = int(keys[0])
    for label, fraction in (("1%", 0.01), ("10%", 0.10), ("50%", 0.50), ("100%", 1.0)):
        hi = int(keys[min(rows - 1, max(0, int(rows * fraction) - 1))])
        table = RemoteTable.open(store, "selective")
        registry = MetricsRegistry()
        before_bytes = store.stats.bytes_downloaded
        before_requests = store.stats.get_requests
        start = time.perf_counter()
        with use_registry(registry):
            result = table.scan(columns=["payload"], where={"k": Between(lo, hi)})
        elapsed = time.perf_counter() - start
        sweep[label] = {
            "selectivity": fraction,
            "rows_returned": len(result.columns[0]),
            "bytes_fetched": store.stats.bytes_downloaded - before_bytes,
            "get_requests": store.stats.get_requests - before_requests,
            "pruned_blocks": int(registry.get("cloud.scan.pruned_blocks")),
            "pruned_bytes": int(registry.get("cloud.scan.pruned_bytes")),
            "decode_s": elapsed,
        }
    return {
        "rows": rows,
        "block_size": block_size,
        "table_bytes": compressed.nbytes,
        "sweep": sweep,
    }


def bench_compressed_scan(
    rows: int, seed: int, block_size: int = 4000, repeats: int = 3
) -> dict:
    """Compressed-domain filtered scan vs decompress-then-filter, swept over
    selectivity.

    Three workloads pick the scheme families with selection-vector kernels:
    sorted ints (FastBP128 — page headers reject whole pages), run-heavy
    ints (RLE — only matching runs decode) and low-cardinality strings
    (dictionary — the predicate compiles into code space and only matching
    codes gather their strings). Each runs
    :func:`repro.query.executor.filter_column` against the naive
    decompress-evaluate-gather baseline at ~1% / 10% / 50% / 100%
    selectivity, recording wall time and the ``query.cdomain.filtered.*``
    counters. The ``at_1pct`` rollup (total rows decoded vs rows in
    surviving blocks, worst-case speedup) is what CI gates — decode work
    must scale with selectivity, not block size.
    """
    from repro.core.compressor import compress_column
    from repro.core.decompressor import decompress_column
    from repro.encodings import strutil
    from repro.query.executor import filter_column
    from repro.query.predicates import Between, In
    from repro.types import ColumnType

    rng = np.random.default_rng(seed)
    fractions = (("1%", 0.01), ("10%", 0.10), ("50%", 0.50), ("100%", 1.0))

    sorted_ints = np.sort(rng.integers(0, 1 << 16, rows)).astype(np.int32)
    run_values = np.sort(rng.integers(0, 50_000, (rows + 19) // 20)).astype(np.int32)
    rle_ints = np.repeat(run_values, 20)[:rows]
    vocab = [f"category-{i:03d}" for i in range(100)]
    cat_ids = rng.integers(0, len(vocab), rows)

    def int_predicate(values: np.ndarray, fraction: float) -> Between:
        return Between(int(values.min()), int(np.quantile(values, fraction)))

    workloads = {
        "bitpack": (
            Column.ints("v", sorted_ints),
            lambda fraction: int_predicate(sorted_ints, fraction),
        ),
        "rle": (
            Column.ints("v", rle_ints),
            lambda fraction: int_predicate(rle_ints, fraction),
        ),
        "dictionary": (
            Column.strings("v", [vocab[i] for i in cat_ids]),
            lambda fraction: In(vocab[: max(1, round(len(vocab) * fraction))]),
        ),
    }
    config = BtrBlocksConfig(block_size=block_size)
    report: dict = {"rows": rows, "block_size": block_size, "workloads": {}}
    decoded_1pct = 0
    surviving_1pct = 0
    speedups_1pct = []
    for name, (column, make_predicate) in workloads.items():
        compressed = compress_column(column, config)
        sweep = {}
        for label, fraction in fractions:
            predicate = make_predicate(fraction)
            registry = MetricsRegistry()
            with use_registry(registry):
                filtered = filter_column(compressed, predicate)
            rows_decoded = int(registry.get("query.cdomain.filtered.rows_selected"))
            surviving_rows = int(registry.get("query.cdomain.filtered.rows_total"))
            filtered_s = _best_seconds(
                lambda: filter_column(compressed, predicate), repeats
            )

            def naive():
                full = decompress_column(compressed)
                hits = np.nonzero(np.asarray(predicate.evaluate(full.data)))[0]
                if compressed.ctype is ColumnType.STRING:
                    return strutil.gather(full.data, hits)
                return np.asarray(full.data)[hits]

            naive_s = _best_seconds(naive, repeats)
            sweep[label] = {
                "selectivity": fraction,
                "rows_matched": len(filtered.data),
                "filtered_s": filtered_s,
                "naive_s": naive_s,
                "speedup": naive_s / filtered_s if filtered_s else 0.0,
                "rows_decoded": rows_decoded,
                "surviving_rows": surviving_rows,
                "decode_fraction": (
                    rows_decoded / surviving_rows if surviving_rows else 0.0
                ),
                "pages": int(registry.get("query.cdomain.pages")),
                "pages_skipped": int(registry.get("query.cdomain.pages_skipped")),
            }
            if label == "1%":
                decoded_1pct += rows_decoded
                surviving_1pct += surviving_rows
                speedups_1pct.append(sweep[label]["speedup"])
        report["workloads"][name] = sweep
    report["at_1pct"] = {
        "rows_decoded": decoded_1pct,
        "surviving_rows": surviving_1pct,
        "decode_fraction": decoded_1pct / surviving_1pct if surviving_1pct else 0.0,
        "min_speedup": min(speedups_1pct) if speedups_1pct else 0.0,
    }
    return report


def bench_serve(
    tenant_sweep: "tuple[int, ...]" = (1, 4, 16),
    rows: int = 4000,
    tables: int = 3,
    requests_per_tenant: int = 8,
    seed: int = 2024_08,
    max_concurrency: int = 4,
    queue_limit: int = 64,
    deadline_seconds: "float | None" = None,
) -> dict:
    """Multi-tenant serving sweep (``repro serve-bench``): p50/p99 latency,
    shared-cache hit rate and $/query per tenant count, all on simulated
    time. Thin façade over :func:`repro.serve.bench.run_serve_bench` so the
    CLI and CI jobs import one bench module."""
    from repro.serve.bench import run_serve_bench

    return run_serve_bench(
        tenant_sweep=tenant_sweep,
        rows=rows,
        tables=tables,
        requests_per_tenant=requests_per_tenant,
        seed=seed,
        max_concurrency=max_concurrency,
        queue_limit=queue_limit,
        deadline_seconds=deadline_seconds,
    )


def bench_serve_brownout(
    tenants: int = 16,
    requests_per_tenant: int = 8,
    rows: int = 4000,
    tables: int = 3,
    seed: int = 2024_08,
    chaos_seed: int = 7,
    deadline_seconds: float = 0.75,
    max_concurrency: int = 4,
    queue_limit: int = 32,
) -> dict:
    """Brownout chaos sweep (``repro serve-bench --brownout``): the overload
    layer (deadlines, retry budgets, circuit breaker, shedding) on vs off
    under one seeded brownout episode set, plus a fault-free control pair.
    Thin façade over :func:`repro.serve.bench.run_brownout_bench`."""
    from repro.serve.bench import run_brownout_bench

    return run_brownout_bench(
        tenants=tenants,
        requests_per_tenant=requests_per_tenant,
        rows=rows,
        tables=tables,
        seed=seed,
        chaos_seed=chaos_seed,
        deadline_seconds=deadline_seconds,
        max_concurrency=max_concurrency,
        queue_limit=queue_limit,
    )


def run_bench(
    rows: int = DEFAULT_ROWS,
    workers: Sequence[int] = DEFAULT_WORKERS,
    repeats: int = DEFAULT_REPEATS,
    seed: int = DEFAULT_SEED,
    date: str | None = None,
    decode_only: bool = False,
    parallel_rows: "int | None" = None,
    backends: "Sequence[str] | None" = None,
) -> dict:
    """The full benchmark report (the JSON written to ``BENCH_<date>.json``).

    ``decode_only`` restricts the run to the read path: scheme decompression
    throughput plus the pipelined-scan overlap breakdown, skipping the
    compress-side ``parallel`` and ``selection`` sections. The parallel
    section's workload is sized by ``parallel_rows`` — defaulting to
    ``max(rows, DEFAULT_PARALLEL_ROWS)`` so scaled-down smoke runs still
    measure parallelism over a wall time that can show it — and runs once
    per execution backend (``backends``; default: thread, plus process when
    this host can use it).
    """
    import numpy

    if parallel_rows is None:
        parallel_rows = max(rows, DEFAULT_PARALLEL_ROWS)
    if backends is None:
        backends = default_bench_backends()
    report = {
        "meta": {
            "date": date or time.strftime("%Y-%m-%d"),
            "rows": rows,
            "parallel_rows": parallel_rows,
            "workers": list(workers),
            "backends": list(backends),
            "repeats": repeats,
            "seed": seed,
            "cpu_count": os.cpu_count(),
            "cpu_affinity": _cpu_affinity(),
            "numpy": numpy.__version__,
            "decode_only": decode_only,
        },
        "schemes": bench_schemes(rows, repeats, seed, decode_only=decode_only),
        "pipeline": bench_pipeline(rows, seed),
        "selective_scan": bench_selective_scan(rows, seed),
        "compressed_scan": bench_compressed_scan(rows, seed),
    }
    if not decode_only:
        report["parallel"] = bench_parallel(
            parallel_rows, workers, repeats, seed, backends=backends
        )
        report["selection"] = bench_selection(rows, seed)
    return report


# -- baseline comparison -------------------------------------------------------

def _throughput_metrics(report: dict, prefix: str = "") -> Iterable[tuple[str, float]]:
    """All throughput leaves of a report, flattened to dotted paths.

    A numeric leaf is a throughput metric when its own key ends in
    ``_mb_s`` or it sits under a dict whose key does (the per-worker-count
    maps in the ``parallel`` section).
    """
    for key, value in report.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            yield from _throughput_metrics(value, f"{path}.")
        elif isinstance(value, (int, float)) and "_mb_s" in path:
            yield path, float(value)


def compare(current: dict, baseline: dict, threshold: float = DEFAULT_THRESHOLD) -> list[str]:
    """Throughput regressions of ``current`` vs ``baseline``.

    Returns one message per ``*_mb_s`` metric that dropped more than
    ``threshold`` (a fraction) below the baseline value — this gates both
    ``compress_mb_s`` and ``decompress_mb_s`` in the ``schemes`` section.
    Metrics present in only one report are ignored — adding a workload must
    not fail CI. The ``parallel`` and ``pipeline`` sections are reported but
    never gated: parallel timings scale with the host's core count, and the
    pipeline breakdown mixes simulated fetch constants with host decode
    speed; neither is something the committed baseline can predict.
    """
    base = dict(_throughput_metrics(baseline))
    regressions = []
    for path, value in _throughput_metrics(current):
        if path.startswith(
            ("parallel.", "pipeline.", "selective_scan.", "compressed_scan.")
        ):
            continue
        reference = base.get(path)
        if reference is None or reference <= 0:
            continue
        if value < reference * (1.0 - threshold):
            regressions.append(
                f"{path}: {value:.2f} MB/s is {100 * (1 - value / reference):.1f}% "
                f"below baseline {reference:.2f} MB/s (threshold {threshold:.0%})"
            )
    return regressions


def load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def write_report(report: dict, path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")


__all__ = [
    "DEFAULT_PARALLEL_ROWS",
    "SCHEME_WORKLOADS",
    "bench_parallel",
    "default_bench_backends",
    "bench_pipeline",
    "bench_schemes",
    "bench_selection",
    "compare",
    "load_report",
    "run_bench",
    "write_report",
]
