"""BtrBlocks reproduction: efficient columnar compression for data lakes.

A from-scratch Python implementation of the SIGMOD 2023 paper *BtrBlocks:
Efficient Columnar Compression for Data Lakes* (Kuschewski, Sauerwein,
Alhomssi, Leis), including the cascading compression framework, the
sampling-based scheme selection algorithm, Pseudodecimal Encoding, and all
substrates the paper's evaluation depends on.

Quickstart::

    import numpy as np
    from repro import Column, Relation, compress_relation, decompress_relation

    table = Relation.from_dict("demo", {
        "price": np.round(np.random.uniform(1, 100, 64_000), 2),
        "status": ["shipped"] * 64_000,
    })
    compressed = compress_relation(table)
    print(table.nbytes / compressed.nbytes)      # compression ratio
    restored = decompress_relation(compressed)
"""

from repro.bitmap import RoaringBitmap
from repro.core import (
    BtrBlocksConfig,
    Relation,
    compress_block,
    compress_column,
    compress_relation,
    decompress_block,
    decompress_column,
    decompress_relation,
)
from repro.core.blocks import CompressedBlock, CompressedColumn, CompressedRelation
from repro.core.file_format import (
    column_from_bytes,
    column_to_bytes,
    relation_from_bytes,
    relation_from_files,
    relation_to_bytes,
    relation_to_files,
)
from repro.core.sampling import SamplingStrategy
from repro.core.selector import SchemeSelector
from repro.observe import (
    MetricsRegistry,
    SelectionTrace,
    build_report,
    get_registry,
    get_trace,
    report_json,
)
from repro.types import Column, ColumnType, StringArray, columns_equal

__version__ = "1.0.0"

__all__ = [
    "BtrBlocksConfig",
    "Column",
    "ColumnType",
    "CompressedBlock",
    "CompressedColumn",
    "CompressedRelation",
    "MetricsRegistry",
    "Relation",
    "RoaringBitmap",
    "SamplingStrategy",
    "SchemeSelector",
    "SelectionTrace",
    "StringArray",
    "build_report",
    "get_registry",
    "get_trace",
    "report_json",
    "column_from_bytes",
    "column_to_bytes",
    "columns_equal",
    "compress_block",
    "compress_column",
    "compress_relation",
    "decompress_block",
    "decompress_column",
    "decompress_relation",
    "relation_from_bytes",
    "relation_from_files",
    "relation_to_bytes",
    "relation_to_files",
]
