"""Additional tests for the column-scan layer (data_scale, uploads)."""

import numpy as np
import pytest

from repro.cloud import PricingModel, SimulatedObjectStore
from repro.cloud.scan import (
    ColumnScanResult,
    scan_btrblocks_columns,
    scan_parquet_like_columns,
    upload_btrblocks,
    upload_parquet_like,
)
from repro.core.compressor import compress_relation
from repro.core.relation import Relation
from repro.baselines.parquet_like import ParquetLikeFormat
from repro.types import Column


@pytest.fixture
def relation(rng):
    return Relation("t", [
        Column.ints("a", rng.integers(0, 10, 3000)),
        Column.strings("b", [["x", "y"][i % 2] for i in range(3000)]),
    ])


class TestDataScale:
    def test_scale_one_is_identity(self):
        store = SimulatedObjectStore()
        result = ColumnScanResult("f", requests=5, bytes_downloaded=1000,
                                  dependent_round_trips=2)
        assert result.cost_usd(store) == result.cost_usd(store, 1.0)
        assert result.scaled_requests(store) == 5

    def test_scaling_grows_time_linearly_in_bytes(self):
        store = SimulatedObjectStore()
        result = ColumnScanResult("f", requests=5, bytes_downloaded=10**6,
                                  dependent_round_trips=2)
        small = result.seconds(store, 1.0)
        big = result.seconds(store, 1000.0)
        latency = 2 * store.pricing.request_latency_seconds
        assert (big - latency) == pytest.approx((small - latency) * 1000.0)

    def test_scaled_requests_reflect_chunking(self):
        store = SimulatedObjectStore()
        result = ColumnScanResult("f", requests=3, bytes_downloaded=10**6,
                                  dependent_round_trips=2)
        # 1 GB at 16 MiB chunks -> 60 chunks + 2 metadata round trips.
        assert result.scaled_requests(store, 1000.0) == 2 + 60


class TestUploads:
    def test_btrblocks_layout_keys(self, relation):
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        keys = store.keys("t/")
        assert "t/table.meta" in keys
        assert any(k.endswith(".btr") for k in keys)

    def test_parquet_footer_readable(self, relation):
        store = SimulatedObjectStore()
        upload_parquet_like(store, "t", ParquetLikeFormat("none").compress_relation(relation))
        result = scan_parquet_like_columns(store, "t", ["a"])
        assert result.requests == 3
        assert result.bytes_downloaded > 0

    def test_btrblocks_column_subset_cheaper_than_full(self, relation):
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        one = scan_btrblocks_columns(store, "t", [0])
        both = scan_btrblocks_columns(store, "t", [0, 1])
        assert one.bytes_downloaded < both.bytes_downloaded

    def test_missing_column_raises(self, relation):
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        with pytest.raises(IndexError):
            scan_btrblocks_columns(store, "t", [99])


class TestPricingVariants:
    def test_custom_pricing_changes_costs(self):
        cheap = SimulatedObjectStore(pricing=PricingModel(ec2_usd_per_hour=1.0))
        expensive = SimulatedObjectStore(pricing=PricingModel(ec2_usd_per_hour=10.0))
        result = ColumnScanResult("f", requests=1, bytes_downloaded=10**7,
                                  dependent_round_trips=1)
        assert result.cost_usd(expensive) > result.cost_usd(cheap)
