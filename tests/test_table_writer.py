"""Transactional table commits: versioned manifests, conflicts, recovery.

The crash *matrix* (kill the writer at every protocol step) lives in
``test_write_crash_matrix.py``; this file covers the sunny-day commit
protocol, version resolution on the read side, racing writers, and the
bookkeeping around :func:`repro.cloud.recover`.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.cloud import RemoteTable, SimulatedObjectStore, TableWriter, recover
from repro.cloud.remote_table import MANIFEST_DIR, manifest_key, version_prefix
from repro.cloud.scan import upload_btrblocks
from repro.core.compressor import compress_relation
from repro.core.decompressor import decompress_relation
from repro.core.relation import Relation
from repro.exceptions import CommitConflictError, FormatError
from repro.observe import MetricsRegistry, use_registry
from repro.types import Column

SEED = int(os.environ.get("REPRO_FAULT_SEED", "192024773"), 0)


def make_relation(name: str = "trips", rows: int = 3000, offset: int = 0) -> Relation:
    rng = np.random.default_rng(SEED ^ offset)
    return Relation(name, [
        Column.ints("id", np.arange(offset, offset + rows)),
        Column.doubles("fare", np.round(rng.uniform(2.5, 99.0, rows), 2)),
    ])


@pytest.fixture
def store() -> SimulatedObjectStore:
    return SimulatedObjectStore()


class TestCommit:
    def test_write_then_open_round_trips(self, store):
        relation = make_relation()
        compressed = compress_relation(relation)
        version = TableWriter(store).write(compressed)
        assert version == 1
        table = RemoteTable.open(store, "trips")
        assert table.version == 1
        result = table.scan()
        original = decompress_relation(compressed)
        for got, want in zip(result.columns, original.columns):
            assert got.name == want.name
            np.testing.assert_array_equal(got.data, want.data)

    def test_manifest_layout(self, store):
        compressed = compress_relation(make_relation())
        TableWriter(store, writer_id="w7").write(compressed)
        key = manifest_key("trips", 1)
        assert key == "trips/_manifests/000001.json"
        manifest = json.loads(store.get(key).decode("utf-8"))
        assert manifest["name"] == "trips"
        assert manifest["version"] == 1
        assert [c["name"] for c in manifest["columns"]] == ["id", "fare"]
        for entry in manifest["columns"]:
            assert entry["file"].startswith(version_prefix("trips", 1))
            assert "w7-" in entry["file"]
            assert store.object_size(entry["file"]) == entry["bytes"]

    def test_versions_increment(self, store):
        writer = TableWriter(store)
        assert writer.write(compress_relation(make_relation(rows=500))) == 1
        assert writer.write(compress_relation(make_relation(rows=600))) == 2
        assert writer.committed_versions("trips") == [1, 2]
        assert writer.next_version("trips") == 3

    def test_open_resolves_latest_by_default(self, store):
        writer = TableWriter(store)
        writer.write(compress_relation(make_relation(rows=500)))
        writer.write(compress_relation(make_relation(rows=800)))
        table = RemoteTable.open(store, "trips")
        assert table.version == 2
        assert table.row_count == 800

    def test_open_pinned_version(self, store):
        writer = TableWriter(store)
        writer.write(compress_relation(make_relation(rows=500)))
        writer.write(compress_relation(make_relation(rows=800)))
        table = RemoteTable.open(store, "trips", version=1)
        assert table.version == 1
        assert table.row_count == 500

    def test_open_missing_pinned_version(self, store):
        TableWriter(store).write(compress_relation(make_relation()))
        with pytest.raises(FormatError):
            RemoteTable.open(store, "trips", version=9)

    def test_open_unwritten_table(self, store):
        with pytest.raises(Exception):
            RemoteTable.open(store, "nope")

    def test_legacy_unversioned_layout_still_opens(self, store):
        upload_btrblocks(store, compress_relation(make_relation()))
        table = RemoteTable.open(store, "trips")
        assert table.version is None
        assert table.row_count == 3000

    def test_commit_counters(self, store):
        registry = MetricsRegistry()
        with use_registry(registry):
            TableWriter(store).write(compress_relation(make_relation()))
        # 2 columns + 1 manifest staged, all bytes accounted.
        assert registry.get("cloud.write.objects_staged") == 3
        assert registry.get("cloud.write.tables_committed") == 1
        assert registry.get("cloud.write.rows_committed") == 3000
        total = sum(store.object_size(key) for key in store.keys("trips/"))
        assert registry.get("cloud.write.bytes_staged") == total


class TestConflicts:
    def test_second_writer_same_version_conflicts(self, store):
        compressed = compress_relation(make_relation())
        TableWriter(store, writer_id="a").write(compressed, version=1)
        registry = MetricsRegistry()
        with use_registry(registry):
            with pytest.raises(CommitConflictError):
                TableWriter(store, writer_id="b").write(compressed, version=1)
        assert registry.get("cloud.write.commit_conflicts") == 1
        # The loser left nothing behind: only the winner's objects exist.
        assert store.staged_bytes("trips/") == 0
        for key in store.keys(version_prefix("trips", 1)):
            assert "a-" in key

    def test_loser_retries_at_fresh_version(self, store):
        compressed = compress_relation(make_relation())
        TableWriter(store, writer_id="a").write(compressed, version=1)
        loser = TableWriter(store, writer_id="b")
        with pytest.raises(CommitConflictError):
            loser.write(compressed, version=1)
        assert loser.write(compressed) == 2
        assert RemoteTable.open(store, "trips").version == 2


class TestRecovery:
    def test_recover_clean_table_is_noop(self, store):
        TableWriter(store).write(compress_relation(make_relation()))
        keys_before = store.keys("trips/")
        report = recover(store, "trips")
        assert report.reclaimed_bytes == 0
        assert report.aborted_uploads == 0
        assert report.deleted_objects == 0
        assert store.keys("trips/") == keys_before

    def test_recover_sweeps_pending_uploads(self, store):
        TableWriter(store).write(compress_relation(make_relation()))
        uid = store.initiate_multipart(f"{version_prefix('trips', 2)}w9-col_0000.btr")
        store.upload_part(uid, 1, b"Z" * 512)
        report = recover(store, "trips")
        assert report.aborted_uploads == 1
        assert report.reclaimed_part_bytes == 512
        assert store.staged_bytes("trips/") == 0
        assert RemoteTable.open(store, "trips").version == 1

    def test_recover_sweeps_unreferenced_version_objects(self, store):
        # Writer died after completing its column objects but before the
        # manifest: the objects exist, nothing references them.
        TableWriter(store).write(compress_relation(make_relation()))
        orphan = f"{version_prefix('trips', 2)}w9-col_0000.btr"
        store.put(orphan, b"Y" * 256)
        report = recover(store, "trips")
        assert report.deleted_objects == 1
        assert report.deleted_bytes == 256
        assert orphan not in store.keys("trips/")
        assert RemoteTable.open(store, "trips").version == 1

    def test_recover_pins_versions_with_unreadable_manifests(self, store):
        TableWriter(store).write(compress_relation(make_relation()))
        data_key = f"{version_prefix('trips', 2)}w0-col_0000.btr"
        store.put(data_key, b"X" * 128)
        store.put(manifest_key("trips", 2), b"{not json")
        report = recover(store, "trips")
        # Conservative: the garbled manifest might be a committed version
        # whose metadata got damaged — never delete its data.
        assert report.deleted_objects == 0
        assert data_key in store.keys("trips/")

    def test_recover_never_touches_other_tables(self, store):
        TableWriter(store).write(compress_relation(make_relation("other")))
        uid = store.initiate_multipart(f"{version_prefix('other', 2)}w0-col_0000.btr")
        store.upload_part(uid, 1, b"W" * 64)
        report = recover(store, "trips")
        assert report.aborted_uploads == 0
        assert store.staged_bytes("other/") == 64

    def test_recover_counters(self, store):
        uid = store.initiate_multipart(f"{version_prefix('trips', 1)}w0-col_0000.btr")
        store.upload_part(uid, 1, b"V" * 100)
        store.put(f"{version_prefix('trips', 1)}w1-col_0000.btr", b"U" * 50)
        registry = MetricsRegistry()
        with use_registry(registry):
            report = recover(store, "trips")
        assert registry.get("cloud.write.recovered_uploads") == 1
        assert registry.get("cloud.write.recovered_objects") == 1
        assert registry.get("cloud.write.recovered_bytes") == 150
        assert report.to_dict()["reclaimed_bytes"] == 150


class TestCli:
    def test_write_and_recover_smoke(self, tmp_path):
        from repro.cli import main
        from repro.core.file_format import relation_to_bytes

        compressed = compress_relation(make_relation(rows=800))
        path = tmp_path / "trips.btr"
        path.write_bytes(relation_to_bytes(compressed))
        report_path = tmp_path / "report.json"
        assert main(["write", str(path), "--recover", "-o", str(report_path)]) == 0
        report = json.loads(report_path.read_text())
        assert report["counters"]["cloud.write.tables_committed"] == 1

    def test_write_crash_exits_nonzero_and_recovers(self, tmp_path, capsys):
        from repro.cli import main
        from repro.core.file_format import relation_to_bytes

        compressed = compress_relation(make_relation(rows=800))
        path = tmp_path / "trips.btr"
        path.write_bytes(relation_to_bytes(compressed))
        assert main(["write", str(path), "--crash-after", "2",
                     "--seed", str(SEED), "--recover"]) == 1
        out = capsys.readouterr().out
        assert "crashed" in out
        assert "recovery:" in out
        assert "no committed version is visible" in out
