"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BtrBlocksConfig
from repro.types import Column, StringArray


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_config() -> BtrBlocksConfig:
    """A config with a small block size so multi-block paths get exercised."""
    return BtrBlocksConfig(block_size=1000)


@pytest.fixture
def price_doubles(rng) -> np.ndarray:
    return np.round(rng.uniform(1.0, 1000.0, 5000), 2)


@pytest.fixture
def run_ints(rng) -> np.ndarray:
    return np.repeat(rng.integers(0, 50, 250), 20).astype(np.int32)[:5000]


@pytest.fixture
def city_strings() -> StringArray:
    cities = ["PHOENIX", "RALEIGH", "BETHESDA", "ATHENS", "OSLO"]
    return StringArray.from_pylist([cities[i % 5] for i in range(5000)])


@pytest.fixture
def url_strings() -> StringArray:
    return StringArray.from_pylist(
        [f"https://example.com/products/cat-{i % 40}/item?id={i}" for i in range(3000)]
    )


def make_string_column(values, name="s") -> Column:
    return Column.strings(name, values)


def scheme_round_trip(scheme, values, config=None, vectorized=True):
    """Compress values with one specific scheme and decompress them again.

    Children still go through normal cascading selection, exactly as they
    would when the selector picks this scheme for a block.
    """
    from repro.core.compressor import make_context as compression_context
    from repro.core.decompressor import make_context as decompression_context
    from repro.core.selector import SchemeSelector

    selector = SchemeSelector(config)
    ctx = compression_context(selector)
    payload = scheme.compress(values, ctx)
    out = scheme.decompress(payload, len(values), decompression_context(vectorized))
    return payload, out
