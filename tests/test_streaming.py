"""Tests for the streaming compression writers."""

import numpy as np
import pytest

from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_column, decompress_relation
from repro.core.streaming import ColumnStreamWriter, RelationStreamWriter
from repro.exceptions import TypeMismatchError
from repro.types import ColumnType


@pytest.fixture
def config():
    return BtrBlocksConfig(block_size=1000)


class TestColumnStreamWriter:
    def test_blocks_cut_at_block_size(self, config):
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        for _ in range(3):
            writer.append(list(range(400)))
        column = writer.finish()
        assert [b.count for b in column.blocks] == [1000, 200]
        assert decompress_column(column).data.tolist() == (list(range(400)) * 3)

    def test_exact_block_boundary(self, config):
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        writer.append(list(range(2000)))
        column = writer.finish()
        assert [b.count for b in column.blocks] == [1000, 1000]

    def test_empty_writer(self, config):
        column = ColumnStreamWriter("c", ColumnType.DOUBLE, config).finish()
        assert column.count == 0

    def test_strings_with_mixed_input_kinds(self, config):
        writer = ColumnStreamWriter("s", ColumnType.STRING, config)
        writer.append(["text", b"bytes", None])
        column = writer.finish()
        restored = decompress_column(column)
        assert restored.data.to_pylist() == [b"text", b"bytes", b""]
        assert restored.nulls.to_array().tolist() == [2]

    def test_explicit_null_indices(self, config):
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        writer.append([1, 2, 3], nulls=[1])
        column = writer.finish()
        restored = decompress_column(column)
        assert restored.data.tolist() == [1, 0, 3]
        assert restored.nulls.to_array().tolist() == [1]

    def test_nulls_rebased_per_block(self, config):
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        writer.append([0] * 1500, nulls=[999, 1000])
        column = writer.finish()
        restored = decompress_column(column)
        assert restored.nulls.to_array().tolist() == [999, 1000]

    def test_type_enforcement(self, config):
        writer = ColumnStreamWriter("s", ColumnType.STRING, config)
        with pytest.raises(TypeMismatchError):
            writer.append([3.14])

    def test_rows_written(self, config):
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        writer.append(list(range(1500)))
        assert writer.rows_written == 1500


class TestRelationStreamWriter:
    def test_round_trip(self, config, rng):
        writer = RelationStreamWriter("events", {
            "id": ColumnType.INTEGER,
            "score": ColumnType.DOUBLE,
            "tag": ColumnType.STRING,
        }, config)
        all_ids, all_scores, all_tags = [], [], []
        for batch in range(5):
            ids = rng.integers(0, 100, 700).tolist()
            scores = np.round(rng.uniform(0, 1, 700), 2).tolist()
            tags = [f"t{i % 4}" for i in range(700)]
            writer.append_batch({"id": ids, "score": scores, "tag": tags})
            all_ids += ids
            all_scores += scores
            all_tags += tags
        relation = decompress_relation(writer.finish())
        assert relation.column("id").data.tolist() == all_ids
        assert relation.column("score").data.tolist() == all_scores
        assert relation.column("tag").data.to_pylist() == [t.encode() for t in all_tags]

    def test_mismatched_batch_columns(self, config):
        writer = RelationStreamWriter("t", {"a": ColumnType.INTEGER}, config)
        with pytest.raises(TypeMismatchError):
            writer.append_batch({"b": [1]})

    def test_mismatched_batch_lengths(self, config):
        writer = RelationStreamWriter("t", {
            "a": ColumnType.INTEGER, "b": ColumnType.INTEGER,
        }, config)
        with pytest.raises(TypeMismatchError):
            writer.append_batch({"a": [1, 2], "b": [1]})

    def test_matches_batch_compression(self, config, rng):
        """Streaming output must equal one-shot compression of the same data."""
        from repro.core.compressor import compress_column
        from repro.types import Column

        values = rng.integers(0, 50, 2500).astype(np.int32)
        one_shot = compress_column(Column.ints("c", values), config)
        writer = ColumnStreamWriter("c", ColumnType.INTEGER, config)
        writer.append(values[:900].tolist())
        writer.append(values[900:].tolist())
        streamed = writer.finish()
        assert [b.data for b in streamed.blocks] == [b.data for b in one_shot.blocks]
