"""Tests for the synthetic data generators and CSV ingestion."""

import numpy as np
import pytest

from repro.datagen import distributions as dist
from repro.datagen.csvio import csv_to_relation, relation_to_csv
from repro.datagen.publicbi import (
    DATASETS,
    LARGEST_FIVE,
    NAMED_COLUMNS,
    TABLE3_COLUMNS,
    TABLE4_COLUMNS,
    generate_dataset,
    generate_suite,
    largest_five,
    named_column,
)
from repro.datagen.tpch import generate_tpch
from repro.types import Column, ColumnType, columns_equal


class TestDistributions:
    def test_runs_int_has_runs(self, rng):
        values = dist.runs_int(10_000, rng, distinct=20, avg_run=25.0)
        changes = np.count_nonzero(np.diff(values))
        assert values.size == 10_000
        assert 10_000 / (changes + 1) > 10  # long runs on average

    def test_price_doubles_have_two_decimals(self, rng):
        values = dist.price_doubles(1000, rng, decimals=2)
        assert np.allclose(values, np.round(values, 2))

    def test_dominant_double_fraction(self, rng):
        values = dist.dominant_double(10_000, rng, top=0.0, top_fraction=0.8)
        assert 0.75 < np.mean(values == 0.0) < 0.85

    def test_constant_int(self, rng):
        assert np.unique(dist.constant_int(100, rng, 5)).tolist() == [5]

    def test_urls_share_prefixes(self, rng):
        values = dist.urls(100, rng)
        assert all(v.startswith("https://") for v in values)

    def test_mostly_null_strings(self, rng):
        values = dist.mostly_null_strings(1000, rng, null_fraction=0.9)
        null_share = sum(v is None for v in values) / 1000
        assert 0.85 < null_share < 0.95

    def test_null_positions_fraction(self, rng):
        positions = dist.null_positions(1000, rng, 0.25)
        assert positions.size == 250
        assert np.unique(positions).size == 250


class TestNamedColumns:
    def test_all_table3_columns_registered(self):
        for name in TABLE3_COLUMNS:
            assert name in NAMED_COLUMNS
            assert NAMED_COLUMNS[name].ctype is ColumnType.DOUBLE

    def test_all_table4_columns_registered(self):
        for name in TABLE4_COLUMNS:
            assert name in NAMED_COLUMNS

    def test_named_column_generation(self):
        col = named_column("CommonGovernment/26", 5000)
        assert isinstance(col, Column)
        assert len(col) == 5000

    def test_deterministic(self):
        a = named_column("Arade/4", 1000)
        b = named_column("Arade/4", 1000)
        assert columns_equal(a, b)

    def test_different_seed_differs(self):
        a = named_column("Arade/4", 1000, seed=1)
        b = named_column("Arade/4", 1000, seed=2)
        assert not columns_equal(a, b)

    def test_new_build_is_all_zero(self):
        col = named_column("RealEstate1/New Build?", 1000)
        assert np.unique(col.data).tolist() == [0]

    def test_motos_medio_is_one_value(self):
        col = named_column("Motos/Medio", 500)
        assert set(col.data.to_pylist()) == {b"CABLE"}

    def test_nyc29_looks_like_coordinates(self):
        col = named_column("NYC/29", 2000)
        values = np.asarray(col.data)
        assert -80 < values.mean() < -68

    def test_salaries_france_mostly_null(self):
        col = named_column("SalariesFrance/LIBDOM1", 2000)
        assert col.nulls is not None
        assert len(col.nulls) > 1500


class TestDatasets:
    def test_generate_dataset_shape(self):
        rel = generate_dataset("Telco", rows=1000)
        assert rel.name == "Telco"
        assert rel.row_count == 2000  # 2x multiplier
        assert len(rel.columns) == len(DATASETS["Telco"][1])

    def test_suite_contains_all_datasets(self):
        suite = generate_suite(rows=500)
        assert {r.name for r in suite} == set(DATASETS)

    def test_largest_five(self):
        suite = largest_five(rows=500)
        assert [r.name for r in suite] == LARGEST_FIVE

    def test_suite_type_mix_matches_paper(self):
        suite = generate_suite(rows=4000)
        volumes = {t: 0 for t in ColumnType}
        for rel in suite:
            for col in rel.columns:
                volumes[col.ctype] += col.nbytes
        total = sum(volumes.values())
        # Paper: 71.5% strings, 14.4% doubles, 14.1% integers by volume.
        assert volumes[ColumnType.STRING] / total > 0.55
        assert volumes[ColumnType.DOUBLE] / total < 0.30
        assert volumes[ColumnType.INTEGER] / total < 0.20

    def test_deterministic_suite(self):
        a = generate_dataset("NYC", rows=300)
        b = generate_dataset("NYC", rows=300)
        for col_a, col_b in zip(a.columns, b.columns):
            assert columns_equal(col_a, col_b)


class TestTPCH:
    def test_tables_present(self):
        tables = generate_tpch(rows=2000)
        assert [t.name for t in tables] == ["lineitem", "orders", "part"]

    def test_lineitem_columns(self):
        lineitem = generate_tpch(rows=1000)[0]
        assert "l_orderkey" in lineitem.column_names()
        assert lineitem.column("l_extendedprice").ctype is ColumnType.DOUBLE
        assert lineitem.column("l_returnflag").ctype is ColumnType.STRING

    def test_orderkeys_are_clustered(self):
        lineitem = generate_tpch(rows=5000)[0]
        keys = np.asarray(lineitem.column("l_orderkey").data)
        assert np.all(np.diff(keys.astype(np.int64)) >= 0)

    def test_discount_has_11_values(self):
        lineitem = generate_tpch(rows=20_000)[0]
        assert np.unique(lineitem.column("l_discount").data).size <= 11


class TestCSV:
    def test_round_trip_types(self, rng):
        rel = generate_dataset("Uberlandia", rows=200)
        text = relation_to_csv(rel)
        back = csv_to_relation(text, "Uberlandia")
        assert back.column_names() == rel.column_names()
        for a, b in zip(rel.columns, back.columns):
            assert a.ctype is b.ctype

    def test_doubles_survive_csv_bitwise(self, rng):
        values = np.round(rng.uniform(0, 100, 500), 2)
        rel = generate_dataset("Eixo", rows=10)
        from repro.core.relation import Relation

        rel = Relation("t", [Column.doubles("d", values)])
        back = csv_to_relation(relation_to_csv(rel), "t")
        out = np.asarray(back.column("d").data)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_nulls_as_empty_fields(self):
        from repro.bitmap import RoaringBitmap
        from repro.core.relation import Relation

        rel = Relation("t", [
            Column.ints("i", np.array([1, 0, 3], dtype=np.int32), RoaringBitmap.from_positions([1])),
        ])
        back = csv_to_relation(relation_to_csv(rel), "t")
        assert back.column("i").nulls.to_array().tolist() == [1]

    def test_type_inference(self):
        text = "a,b,c\n1,1.5,x\n2,2.5,y\n"
        rel = csv_to_relation(text)
        assert rel.column("a").ctype is ColumnType.INTEGER
        assert rel.column("b").ctype is ColumnType.DOUBLE
        assert rel.column("c").ctype is ColumnType.STRING

    def test_int64_overflow_widened_to_double(self):
        text = "big\n9999999999\n1\n"
        rel = csv_to_relation(text)
        assert rel.column("big").ctype is ColumnType.DOUBLE

    def test_empty_csv_raises(self):
        from repro.exceptions import FormatError

        with pytest.raises(FormatError):
            csv_to_relation("")
