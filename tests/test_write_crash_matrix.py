"""Crash matrix: kill the writer at every PUT-class protocol step.

The core atomicity claim of the transactional write path, proved by
exhaustion: for *every* point at which a writer can die mid-commit,
readers observe exactly the old version (or no table at all) — never a
torn mix — and a single :func:`repro.cloud.recover` sweep reclaims every
staged byte the corpse left behind, verified against the store's own
accounting rather than the recovery report alone.

``crash_after_put_ops=k`` kills the writer's k-th PUT-class request
(initiate / upload-part / complete), and every later one: a dead process
does not keep issuing requests. Recovery then runs with faults cleared,
modelling a fresh process sweeping up after the corpse.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cloud import (
    FaultProfile,
    RemoteTable,
    SimulatedObjectStore,
    TableWriter,
    recover,
)
from repro.core.compressor import compress_relation
from repro.core.relation import Relation
from repro.exceptions import FormatError, WriterCrashError
from repro.types import Column

SEED = int(os.environ.get("REPRO_FAULT_SEED", "192024773"), 0)


def make_compressed(rows: int, offset: int = 0):
    rng = np.random.default_rng(SEED ^ rows)
    return compress_relation(Relation("trips", [
        Column.ints("id", np.arange(offset, offset + rows)),
        Column.doubles("fare", np.round(rng.uniform(2.5, 99.0, rows), 2)),
    ]))


def count_clean_put_ops(compressed) -> int:
    """How many PUT-class protocol steps one fault-free commit issues."""
    store = SimulatedObjectStore(faults=FaultProfile(seed=SEED))
    TableWriter(store).write(compressed)
    return store.fault_injector.put_ops


COMPRESSED_V1 = make_compressed(1500)
COMPRESSED_V2 = make_compressed(2000, offset=1500)
TOTAL_OPS = count_clean_put_ops(COMPRESSED_V1)


def test_matrix_covers_the_whole_protocol():
    # 2 columns + manifest, each initiate + ≥1 part + complete = ≥9 steps.
    assert TOTAL_OPS >= 9


@pytest.mark.parametrize("crash_at", range(TOTAL_OPS))
def test_crash_before_first_commit_publishes_nothing(crash_at):
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=SEED, crash_after_put_ops=crash_at)
    )
    with pytest.raises(WriterCrashError):
        TableWriter(store).write(COMPRESSED_V1)
    store.set_faults(None)  # recovery is a fresh process

    # Visibility: no manifest landed, so no version is observable.
    with pytest.raises(FormatError):
        RemoteTable.open(store, "trips")

    report = recover(store, "trips")
    assert store.staged_bytes("trips/") == 0
    assert store.keys("trips/") == []
    # Everything the store billed as uploaded was staged garbage; the
    # sweep's own accounting must agree with the store's.
    leftover = store.stats.bytes_uploaded  # includes per-attempt billing
    assert report.reclaimed_bytes > 0 or leftover == 0


@pytest.mark.parametrize("crash_at", range(TOTAL_OPS))
def test_crash_during_v2_leaves_v1_intact(crash_at):
    store = SimulatedObjectStore()
    TableWriter(store).write(COMPRESSED_V1)
    v1_keys = sorted(store.keys("trips/"))
    v1_sizes = {key: store.object_size(key) for key in v1_keys}

    store.set_faults(FaultProfile(seed=SEED, crash_after_put_ops=crash_at))
    with pytest.raises(WriterCrashError):
        TableWriter(store).write(COMPRESSED_V2)
    store.set_faults(None)

    # Readers see exactly the old version — never a mix.
    table = RemoteTable.open(store, "trips")
    assert table.version == 1
    assert table.row_count == 1500
    for entry in table._metadata["columns"]:
        assert entry["file"] in v1_sizes

    recover(store, "trips")
    assert store.staged_bytes("trips/") == 0
    assert sorted(store.keys("trips/")) == v1_keys
    assert {key: store.object_size(key) for key in v1_keys} == v1_sizes
    # v1 is still fully scannable after the sweep.
    assert RemoteTable.open(store, "trips").scan().row_count == 1500


@pytest.mark.parametrize("crash_at", [0, TOTAL_OPS // 2, TOTAL_OPS - 1])
def test_recovery_reclaims_exactly_the_staged_garbage(crash_at):
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=SEED, crash_after_put_ops=crash_at)
    )
    with pytest.raises(WriterCrashError):
        TableWriter(store).write(COMPRESSED_V1)
    store.set_faults(None)
    garbage = store.staged_bytes("trips/") + sum(
        store.object_size(key) for key in store.keys("trips/")
    )
    report = recover(store, "trips")
    assert report.reclaimed_bytes == garbage
    assert store.staged_bytes("trips/") == 0
    assert store.keys("trips/") == []


def test_crash_past_commit_point_is_a_committed_write():
    # Dying on the op *after* the manifest completes is indistinguishable
    # from a clean commit: the table is fully published.
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=SEED, crash_after_put_ops=TOTAL_OPS)
    )
    TableWriter(store).write(COMPRESSED_V1)
    store.set_faults(None)
    assert RemoteTable.open(store, "trips").version == 1
    report = recover(store, "trips")
    assert report.reclaimed_bytes == 0


def test_recovery_is_idempotent():
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=SEED, crash_after_put_ops=4)
    )
    with pytest.raises(WriterCrashError):
        TableWriter(store).write(COMPRESSED_V1)
    store.set_faults(None)
    first = recover(store, "trips")
    second = recover(store, "trips")
    assert first.reclaimed_bytes > 0
    assert second.reclaimed_bytes == 0
    assert second.aborted_uploads == second.deleted_objects == 0
