"""Tests for column/relation compression, blocks and NULL handling."""

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_column, compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_column, decompress_relation
from repro.core.relation import Relation
from repro.exceptions import TypeMismatchError
from repro.types import Column, ColumnType, columns_equal


class TestCompressColumn:
    def test_single_block(self, rng):
        col = Column.ints("a", rng.integers(0, 100, 5000))
        compressed = compress_column(col)
        assert len(compressed.blocks) == 1
        assert compressed.count == 5000
        assert columns_equal(decompress_column(compressed), col)

    def test_multiple_blocks(self, rng, small_config):
        col = Column.ints("a", rng.integers(0, 100, 3500))
        compressed = compress_column(col, small_config)
        assert len(compressed.blocks) == 4
        assert [b.count for b in compressed.blocks] == [1000, 1000, 1000, 500]
        assert columns_equal(decompress_column(compressed), col)

    def test_empty_column(self):
        col = Column.ints("a", [])
        compressed = compress_column(col)
        assert compressed.count == 0
        assert columns_equal(decompress_column(compressed), col)

    def test_blocks_adapt_to_local_distribution(self, small_config):
        # First block constant, second block random: different root schemes.
        data = np.concatenate([
            np.zeros(1000, dtype=np.int32),
            np.random.default_rng(0).integers(0, 2**30, 1000).astype(np.int32),
        ])
        compressed = compress_column(Column.ints("a", data), small_config)
        roots = [b.root_scheme_name for b in compressed.blocks]
        assert roots[0] == "one_value"
        assert roots[1] != "one_value"

    def test_nulls_preserved_across_blocks(self, rng, small_config):
        nulls = RoaringBitmap.from_positions([5, 1500, 2999])
        col = Column.ints("a", rng.integers(0, 10, 3000), nulls)
        back = decompress_column(compress_column(col, small_config))
        assert back.nulls.to_array().tolist() == [5, 1500, 2999]

    def test_string_column_multi_block(self, small_config):
        col = Column.strings("s", [f"value-{i % 7}" for i in range(2500)])
        back = decompress_column(compress_column(col, small_config))
        assert columns_equal(back, col)

    def test_scheme_histogram(self, small_config):
        col = Column.ints("a", np.zeros(2000, dtype=np.int32))
        compressed = compress_column(col, small_config)
        assert compressed.scheme_histogram() == {"one_value": 2}


class TestCompressRelation:
    def test_round_trip_mixed_types(self, rng):
        rel = Relation("t", [
            Column.ints("i", rng.integers(0, 50, 2000)),
            Column.doubles("d", np.round(rng.uniform(0, 100, 2000), 2)),
            Column.strings("s", [["x", "yy", "zzz"][i % 3] for i in range(2000)]),
        ])
        compressed = compress_relation(rel)
        back = decompress_relation(compressed)
        assert back.name == "t"
        assert all(columns_equal(a, b) for a, b in zip(rel.columns, back.columns))

    def test_compression_ratio_reported(self, rng):
        rel = Relation("t", [Column.ints("i", np.zeros(64_000, dtype=np.int32))])
        compressed = compress_relation(rel)
        assert rel.nbytes / compressed.nbytes > 100

    def test_column_lookup(self, rng):
        rel = Relation("t", [Column.ints("a", [1]), Column.ints("b", [2])])
        compressed = compress_relation(rel)
        assert compressed.column("b").name == "b"
        with pytest.raises(KeyError):
            compressed.column("missing")

    def test_scalar_decompression_matches(self, rng):
        rel = Relation("t", [
            Column.ints("i", np.repeat(rng.integers(0, 20, 100), 10)),
            Column.doubles("d", np.round(rng.uniform(0, 10, 1000), 1)),
            Column.strings("s", [["a", "bb"][i % 2] for i in range(1000)]),
        ])
        compressed = compress_relation(rel)
        fast = decompress_relation(compressed, vectorized=True)
        slow = decompress_relation(compressed, vectorized=False)
        for a, b in zip(fast.columns, slow.columns):
            assert columns_equal(a, b)


class TestRelation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(TypeMismatchError):
            Relation("t", [Column.ints("a", [1, 2]), Column.ints("b", [1])])

    def test_from_dict_type_inference(self):
        rel = Relation.from_dict("t", {
            "ints": [1, 2, None],
            "floats": [1.5, None, 2.0],
            "strings": ["a", None, "c"],
        })
        assert rel.column("ints").ctype is ColumnType.INTEGER
        assert rel.column("floats").ctype is ColumnType.DOUBLE
        assert rel.column("strings").ctype is ColumnType.STRING
        assert rel.column("ints").nulls.to_array().tolist() == [2]

    def test_from_dict_numpy_arrays(self):
        rel = Relation.from_dict("t", {
            "i": np.arange(3), "d": np.linspace(0, 1, 3),
        })
        assert rel.column("i").ctype is ColumnType.INTEGER
        assert rel.column("d").ctype is ColumnType.DOUBLE

    def test_select_projection(self):
        rel = Relation("t", [Column.ints("a", [1]), Column.ints("b", [2])])
        assert rel.select(["b"]).column_names() == ["b"]

    def test_slice(self):
        rel = Relation("t", [Column.ints("a", np.arange(10))])
        assert rel.slice(2, 5).column("a").data.tolist() == [2, 3, 4]

    def test_wrong_type_read_raises(self, rng):
        from repro.core.compressor import compress_block
        from repro.core.decompressor import decompress_block

        blob = compress_block(np.arange(10, dtype=np.int32), ColumnType.INTEGER)
        with pytest.raises(TypeMismatchError):
            decompress_block(blob, ColumnType.DOUBLE)
