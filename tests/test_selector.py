"""Tests for sampling-based scheme selection and cascading behaviour."""

import numpy as np
import pytest

from repro.core.compressor import compress_block, make_context
from repro.core.config import BtrBlocksConfig
from repro.core.selector import SchemeSelector, values_nbytes
from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.wire import unwrap
from repro.types import ColumnType, StringArray


def root_scheme(blob) -> int:
    scheme_id, _, _ = unwrap(blob)
    return scheme_id


class TestValuesNbytes:
    def test_int(self):
        assert values_nbytes(np.zeros(10, dtype=np.int32), ColumnType.INTEGER) == 40

    def test_double(self):
        assert values_nbytes(np.zeros(10), ColumnType.DOUBLE) == 80

    def test_string(self):
        sa = StringArray.from_pylist(["abc", "d"])
        assert values_nbytes(sa, ColumnType.STRING) == 4 + 8


class TestSchemePicks:
    def test_one_value_for_constant_column(self):
        blob = compress_block(np.zeros(64_000, dtype=np.int32), ColumnType.INTEGER)
        assert root_scheme(blob) == SchemeId.ONE_VALUE_INT

    def test_rle_or_dict_for_runs(self):
        values = np.repeat(np.arange(64, dtype=np.int32), 1000)
        blob = compress_block(values, ColumnType.INTEGER)
        assert root_scheme(blob) in (SchemeId.RLE_INT, SchemeId.DICT_INT)

    def test_bitpack_for_dense_range(self, rng):
        values = (rng.integers(0, 500, 64_000) + 10**6).astype(np.int32)
        blob = compress_block(values, ColumnType.INTEGER)
        assert root_scheme(blob) in (SchemeId.FAST_BP128, SchemeId.FAST_PFOR)

    def test_pseudodecimal_for_clean_prices(self, rng):
        values = np.round(rng.uniform(0, 10_000, 64_000), 2)
        blob = compress_block(values, ColumnType.DOUBLE)
        assert root_scheme(blob) == SchemeId.PSEUDODECIMAL

    def test_dictionary_for_low_cardinality_strings(self):
        sa = StringArray.from_pylist([["ALPHA", "BETA", "GAMMA"][i % 3] for i in range(5000)])
        blob = compress_block(sa, ColumnType.STRING)
        assert root_scheme(blob) == SchemeId.DICT_STRING

    def test_uncompressed_for_random_doubles(self, rng):
        values = rng.standard_normal(10_000)
        blob = compress_block(values, ColumnType.DOUBLE)
        assert root_scheme(blob) == SchemeId.UNCOMPRESSED_DOUBLE

    def test_frequency_for_dominant_value_with_unique_tail(self, rng):
        values = np.zeros(64_000)
        exceptions = rng.random(64_000) >= 0.7
        values[exceptions] = rng.standard_normal(int(exceptions.sum()))
        blob = compress_block(values, ColumnType.DOUBLE)
        assert root_scheme(blob) in (SchemeId.FREQUENCY_DOUBLE, SchemeId.DICT_DOUBLE)

    def test_empty_block_uncompressed(self):
        blob = compress_block(np.empty(0, dtype=np.int32), ColumnType.INTEGER)
        assert root_scheme(blob) == SchemeId.UNCOMPRESSED_INT


class TestPoolRestriction:
    def test_allowed_schemes(self, rng):
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.UNCOMPRESSED_STRING, SchemeId.DICT_STRING,
            SchemeId.UNCOMPRESSED_INT,
        }))
        sa = StringArray.from_pylist(
            [["ALPHA", "BETA", "GAMMA"][i % 3] for i in range(3000)]
        )
        blob = compress_block(sa, ColumnType.STRING, config)
        assert root_scheme(blob) == SchemeId.DICT_STRING

    def test_int_dict_alone_cannot_beat_raw_codes(self):
        # Without a bit-packing child, int32 dictionary codes are as large as
        # the int32 data itself, so Uncompressed must win.
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.UNCOMPRESSED_INT, SchemeId.DICT_INT,
        }))
        values = np.repeat(np.arange(10, dtype=np.int32), 100)
        blob = compress_block(values, ColumnType.INTEGER, config)
        assert root_scheme(blob) == SchemeId.UNCOMPRESSED_INT

    def test_excluded_schemes(self, rng):
        config = BtrBlocksConfig(excluded_schemes=frozenset({SchemeId.PSEUDODECIMAL}))
        values = np.round(rng.uniform(0, 10_000, 10_000), 2)
        blob = compress_block(values, ColumnType.DOUBLE, config)
        assert root_scheme(blob) != SchemeId.PSEUDODECIMAL

    def test_with_pool_helper(self):
        config = BtrBlocksConfig().with_pool({SchemeId.UNCOMPRESSED_STRING})
        selector = SchemeSelector(config)
        pool = selector.pool(ColumnType.STRING)
        assert [s.scheme_id for s in pool] == [SchemeId.UNCOMPRESSED_STRING]


class TestCascadeDepth:
    def test_depth_zero_stores_uncompressed(self):
        config = BtrBlocksConfig(max_cascade_depth=0)
        values = np.zeros(1000, dtype=np.int32)
        blob = compress_block(values, ColumnType.INTEGER, config)
        assert root_scheme(blob) == SchemeId.UNCOMPRESSED_INT

    def test_depth_one_children_uncompressed(self):
        config = BtrBlocksConfig(max_cascade_depth=1)
        values = np.repeat(np.arange(100, dtype=np.int32), 100)
        blob = compress_block(values, ColumnType.INTEGER, config)
        assert root_scheme(blob) != SchemeId.UNCOMPRESSED_INT
        # Round trip still works at any depth.
        from repro.core.decompressor import decompress_block
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)

    @pytest.mark.parametrize("depth", [0, 1, 2, 3, 5])
    def test_all_depths_round_trip(self, depth, rng):
        from repro.core.decompressor import decompress_block
        config = BtrBlocksConfig(max_cascade_depth=depth)
        values = np.repeat(rng.integers(0, 30, 500), 20).astype(np.int32)[:5000]
        blob = compress_block(values, ColumnType.INTEGER, config)
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)

    def test_deeper_cascades_do_not_grow_output(self, rng):
        values = np.repeat(rng.integers(0, 30, 2000), 30).astype(np.int32)
        sizes = {}
        for depth in (1, 3):
            config = BtrBlocksConfig(max_cascade_depth=depth)
            sizes[depth] = len(compress_block(values, ColumnType.INTEGER, config))
        assert sizes[3] <= sizes[1]


class TestEstimates:
    def test_estimate_ratios_reports_viable_schemes(self, rng):
        selector = SchemeSelector()
        ctx = make_context(selector)
        values = np.repeat(np.arange(100, dtype=np.int32), 100)
        ratios = selector.estimate_ratios(values, ColumnType.INTEGER, ctx)
        assert "rle" in ratios
        assert ratios["rle"] > 5

    def test_selection_time_accounted(self, rng):
        selector = SchemeSelector()
        values = rng.integers(0, 100, 64_000).astype(np.int32)
        compress_block(values, ColumnType.INTEGER, selector=selector)
        assert selector.selection_seconds > 0

    def test_deterministic_given_seed(self):
        values = np.repeat(np.arange(200, dtype=np.int32), 50)
        a = compress_block(values, ColumnType.INTEGER, selector=SchemeSelector(seed=1))
        b = compress_block(values, ColumnType.INTEGER, selector=SchemeSelector(seed=1))
        assert a == b
