"""Tests for the decoupled zone-map metadata layer."""

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_column
from repro.core.config import BtrBlocksConfig
from repro.metadata import ColumnZoneMap, ZoneMapEntry, build_zone_map, pruned_scan
from repro.query import Between, Equals, GreaterThan, IsNull
from repro.types import Column, ColumnType


@pytest.fixture
def sorted_column():
    # Four 1000-row blocks with disjoint value ranges: ideal pruning target.
    return Column.ints("sorted", np.arange(4000, dtype=np.int32))


@pytest.fixture
def config():
    return BtrBlocksConfig(block_size=1000)


class TestBuildZoneMap:
    def test_block_boundaries(self, sorted_column):
        zm = build_zone_map(sorted_column, block_size=1000)
        assert len(zm.entries) == 4
        assert zm.entries[0].minimum == 0
        assert zm.entries[0].maximum == 999
        assert zm.entries[3].minimum == 3000

    def test_null_counts(self):
        column = Column.ints("c", np.zeros(2000, dtype=np.int32),
                             RoaringBitmap.from_positions([5, 1500, 1501]))
        zm = build_zone_map(column, block_size=1000)
        assert zm.entries[0].null_count == 1
        assert zm.entries[1].null_count == 2

    def test_string_columns_get_byte_bounds(self):
        column = Column.strings("s", ["a", "b"] * 500)
        zm = build_zone_map(column, block_size=1000)
        # Strings carry conservative byte-prefix bounds (and a Bloom filter
        # for low-cardinality blocks) instead of numeric min/max.
        assert zm.entries[0].minimum is None
        assert zm.entries[0].min_bytes == b"a"
        assert zm.entries[0].bloom is not None

    def test_infinities_kept_nan_skipped(self):
        # +/-inf are real, ordered values: dropping them from the bounds
        # would let GreaterThan(huge) prune a block that contains inf.
        # Only NaN (unordered) is excluded.
        column = Column.doubles("d", np.array([np.inf, 1.0, -np.inf, 5.0] * 10))
        zm = build_zone_map(column, block_size=1000)
        assert zm.entries[0].minimum == -np.inf
        assert zm.entries[0].maximum == np.inf
        nan_column = Column.doubles("d", np.array([np.nan, 1.0, np.nan, 5.0] * 10))
        zm = build_zone_map(nan_column, block_size=1000)
        assert zm.entries[0].minimum == 1.0
        assert zm.entries[0].maximum == 5.0

    def test_serialization_round_trip(self, sorted_column):
        zm = build_zone_map(sorted_column, block_size=1000)
        restored = ColumnZoneMap.from_bytes(zm.to_bytes())
        assert restored.column_name == zm.column_name
        assert restored.ctype is zm.ctype
        assert restored.entries == zm.entries


class TestPruning:
    def test_entry_may_match(self):
        entry = ZoneMapEntry(100, 0, 10.0, 20.0)
        assert entry.may_match(Equals(15))
        assert not entry.may_match(Equals(25))
        assert not entry.may_match(Between(0, 5))
        assert not entry.may_match(GreaterThan(20))

    def test_all_null_block_never_matches_values(self):
        entry = ZoneMapEntry(100, 100, None, None)
        assert not entry.may_match(Equals(1))
        assert entry.may_match(IsNull())

    def test_is_null_pruning(self):
        entry = ZoneMapEntry(100, 0, 1.0, 2.0)
        assert not entry.may_match(IsNull())

    def test_pruned_blocks_selective(self, sorted_column):
        zm = build_zone_map(sorted_column, block_size=1000)
        assert zm.pruned_blocks(Equals(2500)) == [2]
        assert zm.pruned_blocks(Between(900, 1100)) == [0, 1]
        assert zm.pruned_blocks(GreaterThan(10_000)) == []


class TestPrunedScan:
    def test_reads_only_surviving_blocks(self, sorted_column, config):
        compressed = compress_column(sorted_column, config)
        zm = build_zone_map(sorted_column, block_size=1000)
        matches, blocks_read = pruned_scan(compressed, zm, Equals(2500))
        assert blocks_read == 1
        assert matches.to_array().tolist() == [2500]

    def test_results_match_unpruned_scan(self, sorted_column, config):
        from repro.query import scan_column

        compressed = compress_column(sorted_column, config)
        zm = build_zone_map(sorted_column, block_size=1000)
        predicate = Between(1500, 2200)
        pruned, blocks_read = pruned_scan(compressed, zm, predicate)
        full = scan_column(compressed, predicate)
        assert pruned == full
        assert blocks_read == 2

    def test_no_matches_reads_nothing(self, sorted_column, config):
        compressed = compress_column(sorted_column, config)
        zm = build_zone_map(sorted_column, block_size=1000)
        matches, blocks_read = pruned_scan(compressed, zm, GreaterThan(10_000))
        assert blocks_read == 0
        assert len(matches) == 0
