"""Tests for the serialized BtrBlocks file layout."""

import numpy as np
import pytest

from repro.core.compressor import compress_relation
from repro.core.decompressor import decompress_relation
from repro.core.file_format import (
    column_from_bytes,
    column_to_bytes,
    relation_from_bytes,
    relation_from_files,
    relation_to_bytes,
    relation_to_files,
)
from repro.core.relation import Relation
from repro.exceptions import FormatError
from repro.types import Column, columns_equal


@pytest.fixture
def compressed_relation(rng):
    rel = Relation("sales", [
        Column.ints("id", rng.integers(0, 1000, 2000)),
        Column.doubles("price", np.round(rng.uniform(0, 50, 2000), 2)),
        Column.strings("region", [["north", "south"][i % 2] for i in range(2000)]),
    ])
    return rel, compress_relation(rel)


class TestColumnSerialization:
    def test_round_trip(self, compressed_relation):
        _, compressed = compressed_relation
        for column in compressed.columns:
            restored = column_from_bytes(column_to_bytes(column))
            assert restored.name == column.name
            assert restored.ctype == column.ctype
            assert [b.data for b in restored.blocks] == [b.data for b in column.blocks]

    def test_bad_magic(self):
        with pytest.raises(FormatError):
            column_from_bytes(b"NOPE" + b"\x00" * 20)

    def test_truncated(self, compressed_relation):
        _, compressed = compressed_relation
        blob = column_to_bytes(compressed.columns[0])
        with pytest.raises(FormatError):
            column_from_bytes(blob[: len(blob) // 2])

    def test_unicode_column_name(self, rng):
        from repro.core.compressor import compress_column

        col = Column.ints("prix_en_€", rng.integers(0, 5, 100))
        restored = column_from_bytes(column_to_bytes(compress_column(col)))
        assert restored.name == "prix_en_€"


class TestRelationFiles:
    def test_one_file_per_column_plus_meta(self, compressed_relation):
        _, compressed = compressed_relation
        files = relation_to_files(compressed)
        assert len(files) == 4  # 3 columns + table.meta
        assert "sales/table.meta" in files

    def test_files_round_trip(self, compressed_relation):
        rel, compressed = compressed_relation
        files = relation_to_files(compressed)
        restored = relation_from_files(files, "sales")
        back = decompress_relation(restored)
        assert all(columns_equal(a, b) for a, b in zip(rel.columns, back.columns))

    def test_missing_metadata_raises(self, compressed_relation):
        _, compressed = compressed_relation
        files = relation_to_files(compressed)
        del files["sales/table.meta"]
        with pytest.raises(FormatError):
            relation_from_files(files, "sales")

    def test_metadata_is_json_with_sizes(self, compressed_relation):
        import json

        _, compressed = compressed_relation
        files = relation_to_files(compressed)
        meta = json.loads(files["sales/table.meta"])
        assert [c["name"] for c in meta["columns"]] == ["id", "price", "region"]
        for entry in meta["columns"]:
            assert entry["bytes"] == len(files[entry["file"]])


class TestSingleBuffer:
    def test_round_trip(self, compressed_relation):
        rel, compressed = compressed_relation
        blob = relation_to_bytes(compressed)
        back = decompress_relation(relation_from_bytes(blob))
        assert all(columns_equal(a, b) for a, b in zip(rel.columns, back.columns))

    def test_size_close_to_sum_of_parts(self, compressed_relation):
        _, compressed = compressed_relation
        blob = relation_to_bytes(compressed)
        assert len(blob) < compressed.nbytes * 1.2 + 2000
