"""Tests for the binary wire helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.wire import Reader, Writer, unwrap, wrap
from repro.exceptions import CorruptBlockError


class TestFraming:
    def test_wrap_unwrap(self):
        blob = wrap(7, 123, b"payload")
        scheme_id, count, payload = unwrap(blob)
        assert (scheme_id, count, payload) == (7, 123, b"payload")

    def test_unwrap_too_short(self):
        with pytest.raises(CorruptBlockError):
            unwrap(b"\x01")


class TestWriterReader:
    def test_scalars(self):
        blob = Writer().u8(200).u32(70_000).i64(-5).f64(2.5).getvalue()
        reader = Reader(blob)
        assert reader.u8() == 200
        assert reader.u32() == 70_000
        assert reader.i64() == -5
        assert reader.f64() == 2.5
        assert reader.remaining() == 0

    @pytest.mark.parametrize("dtype", ["uint8", "int32", "int64", "float64", "uint16", "uint32", "uint64"])
    def test_array_round_trip(self, dtype):
        arr = np.arange(10).astype(dtype)
        blob = Writer().array(arr).getvalue()
        out = Reader(blob).array()
        assert out.dtype == np.dtype(dtype)
        assert np.array_equal(out, arr)

    def test_empty_array(self):
        blob = Writer().array(np.empty(0, dtype=np.int32)).getvalue()
        assert Reader(blob).array().size == 0

    def test_unsupported_dtype_rejected(self):
        with pytest.raises(ValueError):
            Writer().array(np.zeros(2, dtype=np.float32))

    def test_blob(self):
        blob = Writer().blob(b"abc").blob(b"").getvalue()
        reader = Reader(blob)
        assert reader.blob() == b"abc"
        assert reader.blob() == b""

    def test_truncated_read_raises(self):
        blob = Writer().u32(1).getvalue()
        reader = Reader(blob[:2])
        with pytest.raises(CorruptBlockError):
            reader.u32()

    def test_truncated_blob_raises(self):
        blob = Writer().blob(b"abcdef").getvalue()
        with pytest.raises(CorruptBlockError):
            Reader(blob[:-3]).blob()

    def test_mixed_sequence(self):
        writer = Writer()
        writer.u8(1).array(np.array([1, 2], dtype=np.int64)).blob(b"x").u32(9)
        reader = Reader(writer.getvalue())
        assert reader.u8() == 1
        assert reader.array().tolist() == [1, 2]
        assert reader.blob() == b"x"
        assert reader.u32() == 9


@settings(max_examples=50, deadline=None)
@given(
    st.integers(0, 255),
    st.integers(0, 2**32 - 1),
    st.binary(max_size=64),
)
def test_property_frame_round_trip(scheme_id, count, payload):
    assert unwrap(wrap(scheme_id, count, payload)) == (scheme_id, count, payload)
