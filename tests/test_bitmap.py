"""Tests for the Roaring bitmap substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RoaringBitmap
from repro.bitmap.roaring import ARRAY_MAX, _Container
from repro.exceptions import CorruptBlockError


class TestConstruction:
    def test_empty(self):
        bm = RoaringBitmap.from_positions([])
        assert len(bm) == 0
        assert not bm
        assert bm.to_array().size == 0

    def test_single_value(self):
        bm = RoaringBitmap.from_positions([42])
        assert len(bm) == 1
        assert 42 in bm
        assert 41 not in bm

    def test_duplicates_collapse(self):
        bm = RoaringBitmap.from_positions([7, 7, 7, 3, 3])
        assert len(bm) == 2
        assert sorted(bm) == [3, 7]

    def test_unsorted_input(self):
        bm = RoaringBitmap.from_positions([9, 1, 5, 3])
        assert bm.to_array().tolist() == [1, 3, 5, 9]

    def test_negative_positions_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_positions([-1])

    def test_above_uint32_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_positions([2**32])

    def test_from_bools(self):
        mask = np.array([True, False, True, True, False])
        bm = RoaringBitmap.from_bools(mask)
        assert bm.to_array().tolist() == [0, 2, 3]

    def test_spans_multiple_chunks(self):
        positions = [0, 65535, 65536, 200_000, 2**31]
        bm = RoaringBitmap.from_positions(positions)
        assert sorted(bm) == sorted(positions)
        assert len(bm._keys) == 4


class TestContainerSelection:
    def test_sparse_uses_array(self):
        bm = RoaringBitmap.from_positions([1, 100, 5000])
        assert bm.container_kinds() == ["run"] or bm.container_kinds() == ["array"]

    def test_dense_random_uses_bitmap(self):
        rng = np.random.default_rng(0)
        positions = rng.choice(65536, size=30_000, replace=False)
        bm = RoaringBitmap.from_positions(positions)
        assert bm.container_kinds() == ["bitmap"]

    def test_long_run_uses_run_container(self):
        bm = RoaringBitmap.from_positions(np.arange(40_000))
        assert bm.container_kinds() == ["run"]
        assert len(bm) == 40_000

    def test_run_container_is_small(self):
        bm = RoaringBitmap.from_positions(np.arange(40_000))
        assert bm.nbytes() < 64

    def test_array_container_bound(self):
        # Exactly ARRAY_MAX scattered values must still round trip.
        rng = np.random.default_rng(1)
        positions = np.sort(rng.choice(65536, size=ARRAY_MAX, replace=False))
        bm = RoaringBitmap.from_positions(positions)
        assert np.array_equal(bm.to_array(), positions)


class TestQueries:
    def test_contains_many(self):
        bm = RoaringBitmap.from_positions([2, 4, 100_000])
        probe = np.array([1, 2, 3, 4, 100_000, 100_001])
        assert bm.contains_many(probe).tolist() == [False, True, False, True, True, False]

    def test_contains_many_empty_bitmap(self):
        bm = RoaringBitmap()
        assert not bm.contains_many(np.array([1, 2, 3])).any()

    def test_to_mask(self):
        bm = RoaringBitmap.from_positions([0, 3])
        assert bm.to_mask(5).tolist() == [True, False, False, True, False]

    def test_to_mask_clips_out_of_range(self):
        bm = RoaringBitmap.from_positions([2, 99])
        assert bm.to_mask(4).tolist() == [False, False, True, False]

    def test_intersects_range(self):
        bm = RoaringBitmap.from_positions([10, 20])
        assert bm.intersects_range(5, 11)
        assert bm.intersects_range(20, 21)
        assert not bm.intersects_range(11, 20)
        assert not bm.intersects_range(21, 100)

    def test_iteration_order(self):
        bm = RoaringBitmap.from_positions([70_000, 3, 65_536])
        assert list(bm) == [3, 65_536, 70_000]


class TestSetAlgebra:
    def test_union(self):
        a = RoaringBitmap.from_positions([1, 2])
        b = RoaringBitmap.from_positions([2, 3])
        assert (a | b).to_array().tolist() == [1, 2, 3]

    def test_intersection(self):
        a = RoaringBitmap.from_positions([1, 2, 70_000])
        b = RoaringBitmap.from_positions([2, 70_000, 90_000])
        assert (a & b).to_array().tolist() == [2, 70_000]

    def test_difference(self):
        a = RoaringBitmap.from_positions([1, 2, 3])
        b = RoaringBitmap.from_positions([2])
        assert (a - b).to_array().tolist() == [1, 3]

    def test_equality(self):
        a = RoaringBitmap.from_positions([5, 10])
        b = RoaringBitmap.from_positions([10, 5, 5])
        assert a == b
        assert a != RoaringBitmap.from_positions([5])


class TestSerialization:
    def test_round_trip_mixed_containers(self):
        rng = np.random.default_rng(2)
        positions = np.concatenate([
            np.arange(30_000),                                  # run
            65_536 + rng.choice(65_536, 100, replace=False),    # array
            131_072 + rng.choice(65_536, 30_000, replace=False),  # bitmap
        ])
        bm = RoaringBitmap.from_positions(positions)
        restored = RoaringBitmap.deserialize(bm.serialize())
        assert restored == bm

    def test_round_trip_empty(self):
        bm = RoaringBitmap()
        assert RoaringBitmap.deserialize(bm.serialize()) == bm

    def test_bad_magic_raises(self):
        with pytest.raises(CorruptBlockError):
            RoaringBitmap.deserialize(b"XXXX\x00\x00\x00\x00")

    def test_truncated_raises(self):
        blob = RoaringBitmap.from_positions([1, 2, 3]).serialize()
        with pytest.raises(CorruptBlockError):
            RoaringBitmap.deserialize(blob[:-2])


class TestContainerInternals:
    def test_bitmap_container_round_trip(self):
        rng = np.random.default_rng(3)
        low = np.sort(rng.choice(65_536, 20_000, replace=False)).astype(np.uint16)
        container = _Container.from_sorted(low)
        assert np.array_equal(container.values(), low)

    def test_run_container_values(self):
        low = np.concatenate([np.arange(100), np.arange(500, 600)]).astype(np.uint16)
        container = _Container.from_sorted(low)
        assert np.array_equal(container.values(), low)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=300_000), max_size=300))
def test_property_round_trip(positions):
    bm = RoaringBitmap.from_positions(positions)
    expected = sorted(set(positions))
    assert bm.to_array().tolist() == expected
    assert RoaringBitmap.deserialize(bm.serialize()).to_array().tolist() == expected
    for p in expected[:20]:
        assert p in bm


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=100),
    st.lists(st.integers(min_value=0, max_value=10_000), max_size=100),
)
def test_property_set_algebra_matches_python_sets(a_list, b_list):
    a, b = set(a_list), set(b_list)
    bm_a = RoaringBitmap.from_positions(list(a))
    bm_b = RoaringBitmap.from_positions(list(b))
    assert set((bm_a | bm_b).to_array().tolist()) == a | b
    assert set((bm_a & bm_b).to_array().tolist()) == a & b
    assert set((bm_a - bm_b).to_array().tolist()) == a - b
