"""Cross-module integration tests: full pipelines over realistic data."""

import numpy as np
import pytest

from repro.baselines.proprietary import ALL_SYSTEMS
from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.datagen.csvio import csv_to_relation, relation_to_csv
from repro.datagen.publicbi import generate_dataset, named_column
from repro.datagen.tpch import generate_tpch
from repro.formats import btrblocks_adapter, orc_adapter, paper_formats, parquet_adapter
from repro.types import ColumnType, columns_equal


DATASET_NAMES = ["CommonGovernment", "Telco", "Uberlandia", "RealEstate1"]


@pytest.mark.parametrize("name", DATASET_NAMES)
def test_publicbi_dataset_round_trips_through_btrblocks(name):
    rel = generate_dataset(name, rows=2000)
    compressed = compress_relation(rel)
    back = decompress_relation(compressed)
    for a, b in zip(rel.columns, back.columns):
        assert columns_equal(a, b), a.name
    assert compressed.nbytes < rel.nbytes


@pytest.mark.parametrize("adapter_factory", [
    lambda: parquet_adapter("none"),
    lambda: parquet_adapter("snappy"),
    lambda: parquet_adapter("zstd"),
    lambda: orc_adapter("none"),
    lambda: orc_adapter("zstd"),
])
def test_baseline_formats_round_trip_publicbi(adapter_factory):
    adapter = adapter_factory()
    rel = generate_dataset("Medicare1", rows=1500)
    back = adapter.decompress(adapter.compress(rel))
    by_name = {c.name: c for c in back.columns}
    for col in rel.columns:
        assert columns_equal(col, by_name[col.name]), col.name


def test_tpch_round_trips_through_all_formats():
    lineitem = generate_tpch(rows=3000)[0]
    for adapter in paper_formats():
        back = adapter.decompress(adapter.compress(lineitem))
        by_name = {c.name: c for c in back.columns}
        for col in lineitem.columns:
            assert columns_equal(col, by_name[col.name]), (adapter.label, col.name)


def test_scalar_and_vectorized_agree_on_suite():
    rel = generate_dataset("NYC", rows=1200)
    compressed = compress_relation(rel)
    fast = decompress_relation(compressed, vectorized=True)
    slow = decompress_relation(compressed, vectorized=False)
    for a, b in zip(fast.columns, slow.columns):
        assert columns_equal(a, b), a.name


def test_btrblocks_beats_plain_parquet_on_publicbi():
    rel = generate_dataset("CommonGovernment", rows=4000)
    btr = btrblocks_adapter()
    parquet = parquet_adapter("none")
    btr_size = btr.size(btr.compress(rel))
    parquet_size = parquet.size(parquet.compress(rel))
    assert btr_size < parquet_size


def test_proprietary_systems_produce_increasing_ratios():
    rel = generate_dataset("Telco", rows=3000)
    ratios = [system.ratio(rel) for system in ALL_SYSTEMS]
    assert all(r >= 1.0 for r in ratios)
    # System A (dict only) must be the weakest of the four.
    assert ratios[0] == min(ratios)


def test_csv_to_compressed_pipeline():
    rel = generate_dataset("Eixo", rows=400)
    text = relation_to_csv(rel)
    parsed = csv_to_relation(text, rel.name)
    compressed = compress_relation(parsed)
    back = decompress_relation(compressed)
    assert back.row_count == rel.row_count


def test_named_table3_columns_compress_losslessly():
    for name in ["CommonGovernment/26", "NYC/29", "CMSProvider/9", "Arade/4"]:
        col = named_column(name, 4000)
        from repro.core.compressor import compress_column
        from repro.core.decompressor import decompress_column

        back = decompress_column(compress_column(col))
        assert columns_equal(back, col), name


def test_scheme_choices_match_table4_expectations():
    """The chosen root schemes should match the paper's Table 4 column."""
    from repro.core.compressor import compress_column

    expectations = {
        "RealEstate1/New Build?": {"one_value"},
        "Motos/Medio": {"one_value"},
        "Redfin2/property_type": {"dictionary"},
        "Medicare1/TOTAL_DAY_SUPPLY": {"fastpfor", "fastbp128"},
        "Telco/TOTAL_MINS_P1": {"pseudodecimal"},
    }
    for name, allowed in expectations.items():
        col = named_column(name, 64_000)
        compressed = compress_column(col)
        root = compressed.blocks[0].root_scheme_name
        assert root in allowed, f"{name}: got {root}"


def test_excluding_pde_changes_double_compression():
    from repro.encodings.base import SchemeId

    col = named_column("Telco/TOTAL_MINS_P1", 32_000)
    full = compress_relation(
        _single_column_relation(col), BtrBlocksConfig()
    ).nbytes
    no_pde = compress_relation(
        _single_column_relation(col),
        BtrBlocksConfig(excluded_schemes=frozenset({SchemeId.PSEUDODECIMAL})),
    ).nbytes
    assert full < no_pde


def _single_column_relation(col):
    from repro.core.relation import Relation

    return Relation("t", [col])
