"""Tests for the shared string utilities (gather, concat, runs)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.strutil import (
    average_run_length,
    concat,
    encode_distinct,
    gather,
    run_boundaries,
)
from repro.types import StringArray


class TestEncodeDistinct:
    def test_codes_reconstruct_input(self):
        sa = StringArray.from_pylist(["x", "y", "x", "z", "y"])
        codes, uniques = encode_distinct(sa)
        assert gather(uniques, codes) == sa

    def test_empty(self):
        codes, uniques = encode_distinct(StringArray.empty(0))
        assert codes.size == 0
        assert len(uniques) == 0

    def test_all_same(self):
        codes, uniques = encode_distinct(StringArray.from_pylist(["a"] * 10))
        assert len(uniques) == 1
        assert (codes == 0).all()


class TestGather:
    def test_matches_scalar_take(self):
        pool = StringArray.from_pylist(["", "a", "bb", "ccc"])
        idx = np.array([3, 0, 1, 3, 2, 2])
        assert gather(pool, idx) == pool.take(idx)

    def test_empty_indices(self):
        pool = StringArray.from_pylist(["a"])
        out = gather(pool, np.empty(0, dtype=np.int64))
        assert len(out) == 0

    def test_all_empty_strings(self):
        pool = StringArray.from_pylist(["", ""])
        out = gather(pool, np.array([0, 1, 0]))
        assert out.to_pylist() == [b"", b"", b""]

    def test_large_gather(self, rng):
        pool = StringArray.from_pylist([f"value-{i}" for i in range(100)])
        idx = rng.integers(0, 100, 50_000)
        out = gather(pool, idx)
        assert len(out) == 50_000
        assert out[123] == pool[int(idx[123])]


class TestConcat:
    def test_two_arrays(self):
        a = StringArray.from_pylist(["x", "y"])
        b = StringArray.from_pylist(["z"])
        assert concat([a, b]).to_pylist() == [b"x", b"y", b"z"]

    def test_empty_list(self):
        assert len(concat([])) == 0

    def test_with_empty_array(self):
        a = StringArray.from_pylist(["x"])
        assert concat([a, StringArray.empty(0)]).to_pylist() == [b"x"]


class TestRuns:
    def test_run_boundaries(self):
        codes = np.array([1, 1, 2, 2, 2, 1])
        assert run_boundaries(codes).tolist() == [0, 2, 5]

    def test_average_run_length(self):
        assert average_run_length(np.array([5, 5, 5, 5])) == 4.0
        assert average_run_length(np.array([1, 2, 3])) == 1.0
        assert average_run_length(np.empty(0, dtype=np.int64)) == 0.0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.binary(max_size=8), min_size=1, max_size=20),
    st.lists(st.integers(0, 19), max_size=100),
)
def test_property_gather_matches_python(pool_values, raw_indices):
    pool = StringArray.from_pylist(pool_values)
    indices = np.array([i % len(pool_values) for i in raw_indices], dtype=np.int64)
    out = gather(pool, indices)
    assert out.to_pylist() == [pool_values[int(i)] for i in indices]
