"""System-level invariants checked with hypothesis.

Beyond round-trip losslessness (test_properties.py), these pin down
properties a storage format must keep under every input:

* determinism — compressing the same data twice yields identical bytes;
* re-compression stability — decompress → compress reproduces the blocks;
* bounded expansion — compressed output never exceeds input by more than a
  small constant envelope (headers), even on adversarial data;
* block independence — any block decodes without its neighbours.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compressor import compress_block, compress_column
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_block
from repro.core.selector import SchemeSelector
from repro.types import Column, ColumnType, StringArray

int_arrays = st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=300).map(
    lambda v: np.array(v, dtype=np.int32)
)
double_arrays = st.lists(
    st.floats(allow_nan=True, allow_infinity=True, width=64), min_size=1, max_size=300
).map(lambda v: np.array(v, dtype=np.float64))
string_arrays = st.lists(st.binary(max_size=16), min_size=1, max_size=200).map(
    StringArray.from_pylist
)


@settings(max_examples=40, deadline=None)
@given(int_arrays)
def test_compression_is_deterministic(values):
    a = compress_block(values, ColumnType.INTEGER, selector=SchemeSelector(seed=9))
    b = compress_block(values, ColumnType.INTEGER, selector=SchemeSelector(seed=9))
    assert a == b


@settings(max_examples=40, deadline=None)
@given(int_arrays)
def test_recompression_is_stable(values):
    blob = compress_block(values, ColumnType.INTEGER, selector=SchemeSelector(seed=9))
    restored = decompress_block(blob, ColumnType.INTEGER)
    again = compress_block(
        np.asarray(restored, dtype=np.int32), ColumnType.INTEGER, selector=SchemeSelector(seed=9)
    )
    assert again == blob


@settings(max_examples=40, deadline=None)
@given(double_arrays)
def test_bounded_expansion_doubles(values):
    blob = compress_block(values, ColumnType.DOUBLE)
    assert len(blob) <= values.nbytes + 64


@settings(max_examples=40, deadline=None)
@given(string_arrays)
def test_bounded_expansion_strings(values):
    blob = compress_block(values, ColumnType.STRING)
    assert len(blob) <= values.nbytes + 64


@settings(max_examples=25, deadline=None)
@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=500), st.integers(2, 64))
def test_blocks_decode_independently(values, block_size):
    column = Column.ints("c", np.array(values, dtype=np.int32))
    compressed = compress_column(column, BtrBlocksConfig(block_size=block_size))
    # Decode the blocks in reverse order, each in isolation.
    pieces = [
        decompress_block(block.data, ColumnType.INTEGER)
        for block in reversed(compressed.blocks)
    ]
    reassembled = np.concatenate(list(reversed(pieces)))
    assert np.array_equal(reassembled, column.data)


@settings(max_examples=30, deadline=None)
@given(int_arrays)
def test_compressed_block_count_header_is_truthful(values):
    from repro.encodings.wire import unwrap

    blob = compress_block(values, ColumnType.INTEGER)
    _scheme, count, _payload = unwrap(blob)
    assert count == values.size
    assert len(decompress_block(blob, ColumnType.INTEGER)) == count
