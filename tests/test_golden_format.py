"""Golden wire-format conformance: the on-disk byte layout is frozen.

Every fixture in ``tests/golden/*.bin`` is the exact serialization of a
fixed input through one scheme (or through the column/relation file format).
The test re-encodes the same inputs and compares byte for byte, so a
refactor that silently changes the wire format -- a reordered field, a new
header byte, a different child cascade -- fails here instead of corrupting
readers of existing files.

When a format change is *intentional*, regenerate the fixtures and commit
them together with the change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden_format.py

Inputs are hard-coded (no RNG) and the selector seed is fixed, so encoding
is fully deterministic.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_column, compress_relation, make_context
from repro.core.decompressor import decompress_block
from repro.core.file_format import (
    _COLUMN_MAGIC,
    column_to_bytes,
    relation_to_bytes,
)
from repro.core.relation import Relation
from repro.core.selector import SchemeSelector
from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.wire import unwrap, wrap
from repro.types import Column, ColumnType, StringArray

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN = bool(os.environ.get("REPRO_REGEN_GOLDEN"))


def _encode(scheme_id: int, values) -> bytes:
    """One framed node: the scheme's exact bytes for a fixed input."""
    scheme = get_scheme(scheme_id)
    selector = SchemeSelector(seed=42)
    payload = scheme.compress(values, make_context(selector))
    return wrap(scheme.scheme_id, len(values), payload)


def _i32(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int32)


def _f64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


def _strings(values) -> StringArray:
    return StringArray.from_pylist(values)


def _fixture_relation() -> Relation:
    nulls = RoaringBitmap.from_positions([1, 3])
    return Relation(
        "golden",
        [
            Column.ints("runs", _i32([4] * 40 + [9] * 24)),
            Column.doubles("price", _f64([1.25, 8.50, 1.25, 99.99] * 16)),
            Column.strings("city", ["OSLO", "ATHENS"] * 32, nulls=nulls),
        ],
    )


def scheme_fixtures() -> dict[str, bytes]:
    """name -> frozen bytes, one entry per registered core scheme."""
    cities = _strings(["OSLO", "ATHENS", "OSLO", "RALEIGH"] * 24)
    urls = _strings([f"https://example.com/products/item?id={i % 7}" for i in range(96)])
    return {
        "uncompressed_int": _encode(SchemeId.UNCOMPRESSED_INT, _i32([3, -1, 7, 2**31 - 1])),
        "uncompressed_double": _encode(SchemeId.UNCOMPRESSED_DOUBLE, _f64([0.5, -0.0, 3.25])),
        "uncompressed_string": _encode(SchemeId.UNCOMPRESSED_STRING, _strings(["ab", "", "cde"])),
        "one_value_int": _encode(SchemeId.ONE_VALUE_INT, _i32([42] * 100)),
        "one_value_double": _encode(SchemeId.ONE_VALUE_DOUBLE, _f64([1.5] * 100)),
        "one_value_string": _encode(SchemeId.ONE_VALUE_STRING, _strings(["same"] * 100)),
        "rle_int": _encode(SchemeId.RLE_INT, _i32([1] * 30 + [2] * 50 + [3] * 20)),
        "rle_double": _encode(SchemeId.RLE_DOUBLE, _f64([0.5] * 40 + [2.5] * 60)),
        "dict_int": _encode(SchemeId.DICT_INT, _i32([5, 900000, 5, 77] * 32)),
        "dict_double": _encode(SchemeId.DICT_DOUBLE, _f64([1.25, 7.75, 1.25] * 40)),
        "dict_string": _encode(SchemeId.DICT_STRING, cities),
        "frequency_int": _encode(SchemeId.FREQUENCY_INT, _i32([7] * 90 + [1, 2, 3, 4, 5, 6])),
        "frequency_double": _encode(SchemeId.FREQUENCY_DOUBLE, _f64([0.0] * 90 + [1.5, 2.5])),
        "frequency_string": _encode(
            SchemeId.FREQUENCY_STRING, _strings(["hot"] * 90 + ["a", "b", "c"])
        ),
        "fastbp128": _encode(SchemeId.FAST_BP128, _i32(range(1000, 1256))),
        "fastpfor": _encode(SchemeId.FAST_PFOR, _i32([3] * 120 + [2**29] + [5] * 7)),
        "fsst": _encode(SchemeId.FSST, urls),
        "pseudodecimal": _encode(SchemeId.PSEUDODECIMAL, _f64([1.25, 99.99, 0.01, 123.45] * 32)),
    }


def file_fixtures() -> dict[str, bytes]:
    """Column-file, relation-file and manifest serializations of a fixed
    relation.

    Three container generations are frozen: the original checksum-less v1
    files keep their seed-era names (and exact bytes — the v1 writer must
    never drift, old files in the wild depend on it); the CRC32-checksummed
    v2 files live alongside under ``*.v2.*`` names, written stats-less so
    their bytes stayed stable when the statistics footer was introduced; and
    the stats-bearing files — v2 plus the trailing ``ZMAP`` footer, the
    writer's default — under ``*.v2s.*``, together with the committed table
    manifest (``manifest.v2s.json``) that carries the same statistics as
    zone-map entries.
    """
    relation = _fixture_relation()
    compressed = compress_relation(relation)
    fixtures = {
        "relation.btr": relation_to_bytes(compressed, version=1),
        "relation.v2.btr": relation_to_bytes(compressed, version=2, with_stats=False),
        "relation.v2s.btr": relation_to_bytes(compressed, version=2, with_stats=True),
        "manifest.v2s.json": _manifest_fixture_bytes(compressed),
    }
    for column in compressed.columns:
        fixtures[f"column_{column.name}.btrc"] = column_to_bytes(column, version=1)
        fixtures[f"column_{column.name}.v2.btrc"] = column_to_bytes(
            column, version=2, with_stats=False
        )
        fixtures[f"column_{column.name}.v2s.btrc"] = column_to_bytes(
            column, version=2, with_stats=True
        )
    return fixtures


def _manifest_fixture_bytes(compressed) -> bytes:
    """The committed version-1 manifest of the fixed relation, statistics,
    block byte ranges and all. Fully deterministic: fixed inputs, fixed
    selector seed, fixed writer id."""
    from repro.cloud import SimulatedObjectStore
    from repro.cloud.remote_table import TableWriter, manifest_key

    store = SimulatedObjectStore()
    TableWriter(store).write(compressed, version=1)
    return store.get(manifest_key(compressed.name, 1))


def all_fixtures() -> dict[str, bytes]:
    fixtures = {f"scheme_{k}.bin": v for k, v in scheme_fixtures().items()}
    fixtures.update(file_fixtures())
    return fixtures


@pytest.fixture(scope="module")
def fixtures() -> dict[str, bytes]:
    return all_fixtures()


def test_regen_writes_fixtures(fixtures):
    """In regen mode, (re)write every .bin; otherwise check they all exist."""
    if REGEN:
        GOLDEN_DIR.mkdir(exist_ok=True)
        for stale in GOLDEN_DIR.glob("*.bin"):
            stale.unlink()
        for stale in GOLDEN_DIR.glob("*.btr*"):
            stale.unlink()
        for stale in GOLDEN_DIR.glob("*.json"):
            stale.unlink()
        for name, blob in fixtures.items():
            (GOLDEN_DIR / name).write_bytes(blob)
    missing = [name for name in fixtures if not (GOLDEN_DIR / name).exists()]
    assert not missing, f"golden fixtures missing (run with REPRO_REGEN_GOLDEN=1): {missing}"


def test_no_orphan_fixtures(fixtures):
    on_disk = {
        p.name
        for p in GOLDEN_DIR.iterdir()
        if p.suffix in {".bin", ".btr", ".btrc", ".json"}
    }
    assert on_disk == set(fixtures), "fixture set drifted from the test's inputs"


@pytest.mark.parametrize("name", sorted(all_fixtures()))
def test_bytes_match_golden(name, fixtures):
    expected = (GOLDEN_DIR / name).read_bytes()
    assert fixtures[name] == expected, (
        f"{name}: serialized bytes differ from the committed golden fixture. "
        "If the wire-format change is intentional, regenerate with "
        "REPRO_REGEN_GOLDEN=1 and commit the new fixtures."
    )


# -- structural header invariants (independent of fixture bytes) ---------------


def test_node_header_layout():
    """Framed node = u8 scheme_id + u32 little-endian count + payload."""
    blob = _encode(SchemeId.ONE_VALUE_INT, _i32([7] * 513))
    assert blob[0] == SchemeId.ONE_VALUE_INT
    assert struct.unpack_from("<I", blob, 1)[0] == 513
    scheme_id, count, payload = unwrap(blob)
    assert (scheme_id, count) == (SchemeId.ONE_VALUE_INT, 513)
    assert blob[5:] == payload


def test_column_file_header_layout():
    """v1 column file = b"BTRC" + u8 type code + u16 name length + name..."""
    column = compress_column(Column.ints("answer", _i32([1, 2, 3])))
    blob = column_to_bytes(column, version=1)
    assert blob[:4] == _COLUMN_MAGIC == b"BTRC"
    type_code, name_len = struct.unpack_from("<BH", blob, 4)
    assert type_code == 0  # integer
    assert blob[7 : 7 + name_len] == b"answer"


def test_column_file_v2_header_layout():
    """v2 = b"BTR2" magic + header CRC32; block headers gain a CRC32 of
    (count, data, nulls)."""
    import zlib

    column = compress_column(Column.ints("answer", _i32([1, 2, 3])))
    blob = column_to_bytes(column)  # v2 is the default writer output
    assert blob[:4] == b"BTR2"
    pos = 7 + len(b"answer") + 4  # fixed header + name + u32 block_count
    (header_crc,) = struct.unpack_from("<I", blob, pos)
    assert header_crc == zlib.crc32(blob[:pos]) & 0xFFFFFFFF
    pos += 4
    count, data_len, nulls_len, checksum = struct.unpack_from("<IIII", blob, pos)
    assert count == 3
    block_data = blob[pos + 16 : pos + 16 + data_len]
    expected = zlib.crc32(block_data, zlib.crc32(struct.pack("<I", count)))
    assert checksum == expected & 0xFFFFFFFF


def test_v1_and_v2_fixtures_decode_identically(fixtures):
    """Backward compat: committed v1 files decode unchanged through the new
    reader, bit-identical to their v2 and stats-bearing v2s siblings."""
    from repro.core.decompressor import decompress_column
    from repro.core.file_format import column_from_bytes
    from repro.types import columns_equal

    for name in ("runs", "price", "city"):
        v1 = column_from_bytes((GOLDEN_DIR / f"column_{name}.btrc").read_bytes())
        v2 = column_from_bytes((GOLDEN_DIR / f"column_{name}.v2.btrc").read_bytes())
        v2s = column_from_bytes((GOLDEN_DIR / f"column_{name}.v2s.btrc").read_bytes())
        assert all(b.checksum is None for b in v1.blocks)
        assert all(b.checksum is not None for b in v2.blocks)
        # Stats ride only in the footer: v1 and stats-less v2 readers see none.
        assert all(b.stats is None for b in v1.blocks)
        assert all(b.stats is None for b in v2.blocks)
        assert v2s.block_stats is not None and not v2s.stats_invalid
        decoded = decompress_column(v1)
        assert columns_equal(decoded, decompress_column(v2))
        assert columns_equal(decoded, decompress_column(v2s))

    original = _fixture_relation()
    for rel_name in ("relation.btr", "relation.v2.btr", "relation.v2s.btr"):
        from repro.core.file_format import relation_from_bytes

        restored = relation_from_bytes((GOLDEN_DIR / rel_name).read_bytes())
        for column, expected in zip(restored.columns, original.columns):
            assert columns_equal(decompress_column(column), expected)


def test_stats_footer_layout(fixtures):
    """Trailing stats section = b"ZMAP" + u8 version + u32 entry count +
    packed entries + u32 CRC32 over everything before it."""
    import zlib

    from repro.core.blockstats import stats_footer_from_bytes
    from repro.core.file_format import column_from_bytes

    plain = (GOLDEN_DIR / "column_runs.v2.btrc").read_bytes()
    blob = (GOLDEN_DIR / "column_runs.v2s.btrc").read_bytes()
    assert blob[: len(plain)] == plain, "stats must append, never rewrite"
    footer = blob[len(plain) :]
    assert footer[:4] == b"ZMAP"
    assert footer[4] == 1  # footer version
    (count,) = struct.unpack_from("<I", footer, 5)
    column = column_from_bytes(blob)
    assert count == len(column.blocks)
    (crc,) = struct.unpack_from("<I", footer, len(footer) - 4)
    assert crc == zlib.crc32(footer[:-4]) & 0xFFFFFFFF
    entries = stats_footer_from_bytes(footer)
    assert [e.row_count for e in entries] == [b.count for b in column.blocks]


def test_manifest_carries_stats_and_block_ranges(fixtures):
    """The committed manifest freezes the pruning contract: per-column
    ``block_ranges`` byte extents and checksum-bound ``stats`` entries."""
    import json

    from repro.core.blockstats import stats_from_json

    manifest = json.loads((GOLDEN_DIR / "manifest.v2s.json").read_bytes())
    assert manifest["name"] == "golden"
    assert manifest["format_version"] == 2
    for entry in manifest["columns"]:
        assert entry["blocks"] == len(entry["block_ranges"])
        for offset, size in entry["block_ranges"]:
            assert offset >= 0 and size >= 16
        stats = stats_from_json(entry["stats"])
        assert len(stats) == entry["blocks"]
        assert sum(s.row_count for s in stats) == entry["rows"]
        assert all(s.checksum is not None for s in stats)


def test_relation_file_header_is_json_index():
    import json

    blob = relation_to_bytes(compress_relation(_fixture_relation()))
    (header_len,) = struct.unpack_from("<I", blob, 0)
    header = json.loads(blob[4 : 4 + header_len])
    assert header["name"] == "golden"
    assert set(header["files"]) == {
        "golden/col_0000.btr",
        "golden/col_0001.btr",
        "golden/col_0002.btr",
        "golden/table.meta",
    }


def test_golden_blocks_still_decode(fixtures):
    """The frozen bytes must decode to the original fixed inputs."""
    out = decompress_block(
        (GOLDEN_DIR / "scheme_rle_int.bin").read_bytes(), ColumnType.INTEGER
    )
    assert np.array_equal(out, _i32([1] * 30 + [2] * 50 + [3] * 20))
    out = decompress_block(
        (GOLDEN_DIR / "scheme_pseudodecimal.bin").read_bytes(), ColumnType.DOUBLE
    )
    assert np.array_equal(out, _f64([1.25, 99.99, 0.01, 123.45] * 32))
    out = decompress_block(
        (GOLDEN_DIR / "scheme_dict_string.bin").read_bytes(), ColumnType.STRING
    )
    assert out == _strings(["OSLO", "ATHENS", "OSLO", "RALEIGH"] * 24)
