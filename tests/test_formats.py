"""Tests for the uniform format adapters."""

import numpy as np
import pytest

from repro.core.config import BtrBlocksConfig
from repro.core.relation import Relation
from repro.formats import (
    btrblocks_adapter,
    orc_adapter,
    paper_formats,
    parquet_adapter,
    parquet_family,
)
from repro.types import Column, columns_equal


@pytest.fixture
def relation(rng):
    return Relation("t", [
        Column.ints("i", rng.integers(0, 30, 1500)),
        Column.strings("s", [["a", "bb"][i % 2] for i in range(1500)]),
    ])


class TestAdapters:
    def test_labels(self):
        assert btrblocks_adapter().label == "btrblocks"
        assert parquet_adapter("zstd").label == "parquet+zstd"
        assert orc_adapter("snappy").label == "orc+snappy"

    def test_paper_formats_lineup(self):
        labels = [a.label for a in paper_formats()]
        assert labels == [
            "btrblocks", "parquet", "parquet+snappy", "parquet+zstd",
            "orc", "orc+snappy", "orc+zstd",
        ]

    def test_parquet_family_lineup(self):
        labels = [a.label for a in parquet_family()]
        assert labels == ["btrblocks", "parquet", "parquet+snappy", "parquet+zstd"]

    @pytest.mark.parametrize("factory", [
        btrblocks_adapter,
        lambda: parquet_adapter("snappy"),
        lambda: orc_adapter("none"),
    ])
    def test_round_trip_through_adapter(self, factory, relation):
        adapter = factory()
        artifact = adapter.compress(relation)
        assert adapter.size(artifact) > 0
        back = adapter.decompress(artifact)
        by_name = {c.name: c for c in back.columns}
        for col in relation.columns:
            assert columns_equal(col, by_name[col.name])

    def test_btrblocks_adapter_custom_config(self, relation):
        config = BtrBlocksConfig(max_cascade_depth=1, vectorized=False)
        adapter = btrblocks_adapter(config, label="shallow")
        assert adapter.label == "shallow"
        back = adapter.decompress(adapter.compress(relation))
        for a, b in zip(relation.columns, back.columns):
            assert columns_equal(a, b)

    def test_size_matches_artifact_nbytes(self, relation):
        adapter = btrblocks_adapter()
        artifact = adapter.compress(relation)
        assert adapter.size(artifact) == artifact.nbytes
