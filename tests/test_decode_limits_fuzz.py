"""Adversarial decoder fuzz: mutated column files must fail *typed*.

Structure-aware mutations of real v1/v2 column files — patched count and
length fields, truncations, and random byte flips — are fed to the full
parse + decode path. The contract under test:

* every failure is a :class:`~repro.exceptions.BtrBlocksError` subclass
  (``FormatError``, ``DecodeLimitError``, ``IntegrityError``,
  ``CorruptBlockError``, ...) — never a raw ``struct.error``,
  ``zlib.error``, ``OverflowError`` or interpreter crash;
* declared counts/lengths are validated *before* allocation, so a
  few-byte adversarial header cannot request a giant buffer
  (``tracemalloc``-verified against tiny :class:`DecodeLimits`);
* nothing hangs — the whole corpus decodes in test-suite time.

Seeded via ``REPRO_FAULT_SEED`` like the fault-injection suites, so CI's
randomized leg explores a fresh mutation corpus every run.
"""

from __future__ import annotations

import os
import struct
import tracemalloc
import zlib

import numpy as np
import pytest

from repro.core.compressor import compress_relation
from repro.core.config import DecodeLimits
from repro.core.decompressor import decompress_column
from repro.core.file_format import column_from_bytes, column_to_bytes
from repro.bitmap import RoaringBitmap
from repro.core.relation import Relation
from repro.exceptions import BtrBlocksError
from repro.types import Column

SEED = int(os.environ.get("REPRO_FAULT_SEED", "192024773"), 0)

#: The only way untrusted bytes may fail. Raw struct/zlib/numpy/Overflow
#: errors escaping the decoder are the bug class this suite exists to catch.
TYPED = BtrBlocksError

TINY_LIMITS = DecodeLimits(
    max_rows_per_block=1 << 16,
    max_bytes_per_block=1 << 20,
    max_blocks_per_column=256,
    max_name_bytes=256,
)

#: Peak-allocation ceiling while decoding one mutant under TINY_LIMITS.
#: Generous versus the ~1 MB limit, but orders of magnitude below what a
#: successful 4 GB count/length bomb would allocate.
ALLOC_CEILING = 32 << 20

#: Values an attacker would patch into a 32-bit count/length field.
BOMB_VALUES = (0xFFFFFFFF, 0x7FFFFFFF, 0x10000000, 1 << 20, 65537)


def build_corpus() -> "dict[str, bytes]":
    rng = np.random.default_rng(SEED)
    rows = 900
    strings = [f"city-{i % 7}" for i in range(rows)]
    nulls = RoaringBitmap.from_positions(np.flatnonzero(rng.random(rows) < 0.1))
    relation = Relation("fuzz", [
        Column.ints("id", np.arange(rows)),
        Column.doubles("price", np.round(rng.uniform(0, 50, rows), 2)),
        Column.strings("city", strings),
        Column.ints("maybe", rng.integers(0, 9, rows), nulls=nulls),
    ])
    compressed = compress_relation(relation)
    corpus = {}
    for column in compressed.columns:
        corpus[f"{column.name}.v1"] = column_to_bytes(column, version=1)
        corpus[f"{column.name}.v2"] = column_to_bytes(column, version=2)
    return corpus


CORPUS = build_corpus()


def decode_mutant(data: bytes) -> None:
    """Full untrusted path: parse, then decode every block strictly."""
    column = column_from_bytes(data, limits=TINY_LIMITS)
    decompress_column(column, on_corrupt="raise", limits=TINY_LIMITS)


def assert_fails_typed_and_bounded(data: bytes, label: str) -> None:
    """The mutant may decode fine or fail typed; nothing else — and it may
    not allocate past the ceiling while trying."""
    tracemalloc.start()
    try:
        decode_mutant(data)
    except TYPED:
        pass
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    assert peak < ALLOC_CEILING, (
        f"{label}: decoding allocated {peak:,} bytes (ceiling {ALLOC_CEILING:,})"
    )


def u32_field_offsets(data: bytes) -> "list[int]":
    """Offsets of every declared 32-bit count/length field in the file."""
    version = 1 if data[:4] == b"BTRC" else 2
    (name_len,) = struct.unpack_from("<H", data, 5)
    pos = 7 + name_len
    offsets = [pos]  # block_count
    (block_count,) = struct.unpack_from("<I", data, pos)
    pos += 4 + (4 if version == 2 else 0)  # skip header CRC in v2
    header_size = 12 if version == 1 else 16
    for _ in range(block_count):
        if pos + header_size > len(data):
            break
        offsets.extend((pos, pos + 4, pos + 8))  # count, data_len, nulls_len
        count, data_len, nulls_len = struct.unpack_from("<III", data, pos)
        pos += header_size + data_len + nulls_len
    return offsets


class TestFieldBombs:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_every_count_and_length_field_bombed(self, name):
        data = CORPUS[name]
        for offset in u32_field_offsets(data):
            for bomb in BOMB_VALUES:
                mutant = bytearray(data)
                struct.pack_into("<I", mutant, offset, bomb)
                assert_fails_typed_and_bounded(
                    bytes(mutant), f"{name} @{offset} <- {bomb:#x}"
                )

    def test_block_count_bomb_rejected_before_allocation(self):
        data = CORPUS["id.v1"]
        (name_len,) = struct.unpack_from("<H", data, 5)
        mutant = bytearray(data)
        struct.pack_into("<I", mutant, 7 + name_len, 0xFFFFFFFF)
        with pytest.raises(TYPED):
            column_from_bytes(bytes(mutant), limits=TINY_LIMITS)

    def test_name_length_bomb(self):
        data = CORPUS["id.v1"]
        mutant = bytearray(data)
        struct.pack_into("<H", mutant, 5, 0xFFFF)
        with pytest.raises(TYPED):
            column_from_bytes(bytes(mutant), limits=TINY_LIMITS)


class TestTruncation:
    @pytest.mark.parametrize("name", ["id.v1", "id.v2", "city.v1", "city.v2"])
    def test_every_truncation_point(self, name):
        data = CORPUS[name]
        cuts = range(len(data)) if len(data) < 512 else sorted(
            set(range(0, 64)) | {len(data) - d for d in range(1, 65)}
            | set(np.random.default_rng(SEED).integers(0, len(data), 64).tolist())
        )
        for cut in cuts:
            assert_fails_typed_and_bounded(data[:cut], f"{name}[:{cut}]")

    def test_empty_and_garbage_prefixes(self):
        for blob in (b"", b"\x00", b"BTRC", b"BTR2", b"BTRX" + b"\x00" * 64,
                     b"\xff" * 128):
            assert_fails_typed_and_bounded(blob, repr(blob[:8]))


class TestByteFlips:
    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_random_flips_fail_typed(self, name):
        data = CORPUS[name]
        rng = np.random.default_rng(SEED ^ zlib.crc32(name.encode()))
        for trial in range(60):
            mutant = bytearray(data)
            for offset in rng.integers(0, len(data), rng.integers(1, 4)):
                mutant[offset] ^= int(rng.integers(1, 256))
            assert_fails_typed_and_bounded(bytes(mutant), f"{name} trial {trial}")

    @pytest.mark.parametrize("name", sorted(CORPUS))
    def test_payload_splices_fail_typed(self, name):
        # Structure-aware splice: overwrite a run of payload bytes with a
        # chunk copied from elsewhere in the same file, preserving framing
        # plausibility better than random flips do.
        data = CORPUS[name]
        rng = np.random.default_rng((~SEED & 0xFFFFFFFF) ^ zlib.crc32(name.encode()))
        for trial in range(20):
            mutant = bytearray(data)
            length = int(rng.integers(4, 32))
            if len(data) <= 2 * length:
                break
            src = int(rng.integers(0, len(data) - length))
            dst = int(rng.integers(0, len(data) - length))
            mutant[dst : dst + length] = data[src : src + length]
            assert_fails_typed_and_bounded(bytes(mutant), f"{name} splice {trial}")


class TestLimitsEnforcement:
    def test_legitimate_file_passes_default_limits(self):
        for name, data in CORPUS.items():
            column = column_from_bytes(data)
            decompress_column(column, on_corrupt="raise")

    def test_tiny_row_limit_rejects_legitimate_file(self):
        limits = DecodeLimits(max_rows_per_block=10)
        with pytest.raises(TYPED):
            decode_mutant_with(CORPUS["id.v1"], limits)

    def test_tiny_byte_limit_rejects_legitimate_file(self):
        limits = DecodeLimits(max_bytes_per_block=8)
        with pytest.raises(TYPED):
            decode_mutant_with(CORPUS["price.v2"], limits)

    def test_degrade_policies_still_bound_counts(self):
        # null_block must not become the bomb vector: an oversized declared
        # count raises even under the lenient policies.
        data = CORPUS["id.v1"]
        offsets = u32_field_offsets(data)
        mutant = bytearray(data)
        struct.pack_into("<I", mutant, offsets[1], 0x7FFFFFFF)  # first block count
        column = None
        try:
            column = column_from_bytes(bytes(mutant), limits=TINY_LIMITS)
        except TYPED:
            return  # rejected even earlier: also fine
        for policy in ("skip", "null_block"):
            with pytest.raises(TYPED):
                decompress_column(column, on_corrupt=policy, limits=TINY_LIMITS)


def decode_mutant_with(data: bytes, limits: DecodeLimits) -> None:
    column = column_from_bytes(data, limits=limits)
    decompress_column(column, on_corrupt="raise", limits=limits)
