"""Tests for the performance-regression harness (``repro bench``)."""

import json

import pytest

from repro.bench import SCHEME_WORKLOADS, compare, load_report, run_bench, write_report
from repro.cli import main


@pytest.fixture(scope="module")
def report():
    return run_bench(
        rows=256, workers=(1, 2), repeats=1,
        parallel_rows=512, backends=("thread",),
    )


class TestRunBench:
    def test_report_sections(self, report):
        assert set(report) == {
            "meta", "schemes", "parallel", "selection", "pipeline",
            "selective_scan", "compressed_scan",
        }
        assert report["meta"]["rows"] == 256
        assert report["meta"]["workers"] == [1, 2]
        assert report["meta"]["parallel_rows"] == 512
        assert report["meta"]["backends"] == ["thread"]
        assert "cpu_affinity" in report["meta"]

    def test_parallel_rows_defaults_to_measurable_floor(self):
        from repro.bench import DEFAULT_PARALLEL_ROWS, default_bench_backends

        meta = run_bench(
            rows=256, workers=(1,), repeats=1, decode_only=True
        )["meta"]
        assert meta["parallel_rows"] == DEFAULT_PARALLEL_ROWS
        assert meta["backends"] == list(default_bench_backends())
        assert "thread" in meta["backends"]

    def test_every_workload_measured(self, report):
        assert set(report["schemes"]) == set(SCHEME_WORKLOADS)
        for name, entry in report["schemes"].items():
            assert entry["compress_mb_s"] > 0, name
            assert entry["decompress_mb_s"] > 0, name
            assert entry["ratio"] > 0, name
            assert entry["schemes_used"], name

    def test_parallel_section(self, report):
        parallel = report["parallel"]
        assert parallel["rows"] == 512
        assert parallel["cpu_count"] >= 1
        assert set(parallel["backends"]) == {"thread"}
        thread = parallel["backends"]["thread"]
        assert set(thread["compress_seconds"]) == {"1", "2"}
        assert thread["compress_speedup"]["1"] == 1.0

    def test_parallel_section_reports_decompress_throughput(self, report):
        thread = report["parallel"]["backends"]["thread"]
        assert set(thread["decompress_mb_s"]) == {"1", "2"}
        assert all(v > 0 for v in thread["decompress_mb_s"].values())
        assert thread["decompress_speedup"]["1"] == 1.0

    def test_pipeline_section(self, report):
        pipeline = report["pipeline"]
        assert pipeline["columns"] == 2
        assert pipeline["chunks"] >= 2
        assert pipeline["fetch_seconds"] > 0
        assert pipeline["decode_seconds"] > 0
        # The pipelined wall can never exceed fetching then decoding serially.
        assert pipeline["wall_seconds"] <= pipeline["serial_seconds"] + 1e-9
        assert pipeline["speedup"] >= 1.0
        assert pipeline["fallbacks"] == 0

    def test_decode_only_skips_compress_side(self):
        report = run_bench(rows=256, workers=(1,), repeats=1, decode_only=True)
        assert set(report) == {
            "meta", "schemes", "pipeline", "selective_scan", "compressed_scan",
        }
        assert report["meta"]["decode_only"] is True
        for name, entry in report["schemes"].items():
            assert "compress_mb_s" not in entry, name
            assert entry["decompress_mb_s"] > 0, name

    def test_selection_section(self, report):
        selection = report["selection"]
        assert set(selection) == {"full", "sticky"}
        for entry in selection.values():
            assert entry["selection_seconds"] <= entry["compress_seconds"]
            assert 0 <= entry["selection_overhead_pct"] <= 100
        assert selection["full"]["sticky_hits"] == 0
        assert selection["sticky"]["sticky_misses"] >= 1


class TestCompare:
    BASE = {
        "schemes": {"rle": {"compress_mb_s": 100.0, "decompress_mb_s": 500.0}},
        "parallel": {"backends": {"thread": {"compress_mb_s": {"1": 50.0}}}},
    }

    def test_flags_regression_beyond_threshold(self):
        current = {"schemes": {"rle": {"compress_mb_s": 60.0, "decompress_mb_s": 490.0}}}
        regressions = compare(current, self.BASE, threshold=0.30)
        assert len(regressions) == 1
        assert "schemes.rle.compress_mb_s" in regressions[0]

    def test_tolerates_drop_within_threshold(self):
        current = {"schemes": {"rle": {"compress_mb_s": 75.0, "decompress_mb_s": 500.0}}}
        assert compare(current, self.BASE, threshold=0.30) == []

    def test_ignores_metrics_missing_from_baseline(self):
        current = {"schemes": {"new": {"compress_mb_s": 0.001}}}
        assert compare(current, self.BASE) == []

    def test_never_gates_parallel_section(self):
        current = {"parallel": {"backends": {"process": {"compress_mb_s": {"1": 1.0}}}}}
        assert compare(current, self.BASE) == []

    def test_gates_decompress_throughput(self):
        current = {"schemes": {"rle": {"compress_mb_s": 100.0, "decompress_mb_s": 100.0}}}
        regressions = compare(current, self.BASE, threshold=0.30)
        assert len(regressions) == 1
        assert "schemes.rle.decompress_mb_s" in regressions[0]

    def test_never_gates_pipeline_section(self):
        base = dict(self.BASE, pipeline={"decode_mb_s": 100.0})
        current = {"pipeline": {"decode_mb_s": 1.0}}
        assert compare(current, base) == []

    def test_non_throughput_fields_ignored(self):
        base = {"schemes": {"rle": {"ratio": 50.0, "input_mb": 2.0}}}
        current = {"schemes": {"rle": {"ratio": 1.0, "input_mb": 0.1}}}
        assert compare(current, base) == []


class TestBenchCli:
    def test_writes_report_and_compares_clean(self, tmp_path, capsys):
        out = tmp_path / "BENCH_test.json"
        small = ["--rows", "256", "--workers", "1", "--repeats", "1",
                 "--parallel-rows", "512", "--backend", "thread"]
        assert main(["bench", *small, "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert set(report["schemes"]) == set(SCHEME_WORKLOADS)
        assert report["meta"]["backends"] == ["thread"]
        # Comparing a report against itself can never regress.
        assert main(["bench", *small,
                     "--output", str(tmp_path / "b2.json"), "--compare", str(out),
                     "--threshold", "0.99"]) == 0

    def test_exit_code_on_regression(self, tmp_path, capsys):
        report = run_bench(rows=256, workers=(1,), repeats=1,
                           parallel_rows=512, backends=("thread",))
        doctored = json.loads(json.dumps(report))
        for entry in doctored["schemes"].values():
            entry["compress_mb_s"] *= 1e6  # impossible baseline
        baseline = tmp_path / "baseline.json"
        write_report(doctored, str(baseline))
        assert load_report(str(baseline))["schemes"]
        out = tmp_path / "current.json"
        assert main(["bench", "--rows", "256", "--workers", "1", "--repeats", "1",
                     "--parallel-rows", "512", "--backend", "thread",
                     "--output", str(out), "--compare", str(baseline)]) == 1
        assert "regression" in capsys.readouterr().out

    def test_decode_only_flag(self, tmp_path, capsys):
        out = tmp_path / "decode.json"
        assert main(["bench", "--rows", "256", "--workers", "1", "--repeats", "1",
                     "--decode-only", "--output", str(out)]) == 0
        report = json.loads(out.read_text())
        assert set(report) == {
            "meta", "schemes", "pipeline", "selective_scan", "compressed_scan",
        }
        assert "pipelined scan" in capsys.readouterr().out
