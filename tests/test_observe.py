"""Tests for the observability layer: registry, trace, report, CLI wiring."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.cli import main
from repro.cloud.objectstore import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable
from repro.cloud.scan import scan_btrblocks_columns, upload_btrblocks
from repro.core.compressor import compress_block, compress_relation
from repro.core.decompressor import decompress_block, decompress_relation
from repro.core.relation import Relation
from repro.datagen.csvio import relation_to_csv
from repro.observe import (
    MetricsRegistry,
    SelectionDecision,
    SelectionTrace,
    build_report,
    get_registry,
    get_trace,
    report_json,
    use_registry,
    use_trace,
)
from repro.types import Column, ColumnType


@pytest.fixture
def relation(rng):
    return Relation("obs", [
        Column.doubles("price", np.round(rng.uniform(1, 500, 4000), 2)),
        Column.strings("city", [["OSLO", "ATHENS"][i % 2] for i in range(4000)]),
        Column.ints("qty", np.repeat(rng.integers(0, 9, 40), 100)),
    ])


@pytest.fixture
def isolated():
    """Fresh registry + trace swapped in as the process-wide defaults."""
    registry, trace = MetricsRegistry(), SelectionTrace()
    with use_registry(registry), use_trace(trace):
        yield registry, trace


class TestMetricsRegistry:
    def test_incr_and_get(self):
        registry = MetricsRegistry()
        registry.incr("a")
        registry.incr("a", 4)
        registry.incr("b.bytes", 1024)
        assert registry.get("a") == 5
        assert registry.get("b.bytes") == 1024
        assert registry.get("missing") == 0

    def test_timer_accumulates_monotonic_time(self):
        registry = MetricsRegistry()
        with registry.timer("phase"):
            pass
        with registry.timer("phase"):
            pass
        snap = registry.snapshot()["timers"]["phase"]
        assert snap["calls"] == 2
        assert snap["seconds"] >= 0.0

    def test_reset(self):
        registry = MetricsRegistry()
        registry.incr("x")
        registry.observe_seconds("t", 1.0)
        registry.reset()
        assert registry.snapshot() == {"counters": {}, "timers": {}}

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.incr("n", 1)
        b.incr("n", 2)
        b.incr("only_b", 7)
        b.observe_seconds("t", 0.5)
        a.merge(b)
        assert a.get("n") == 3
        assert a.get("only_b") == 7
        assert a.snapshot()["timers"]["t"]["calls"] == 1

    def test_thread_safe_accumulation(self):
        registry = MetricsRegistry()

        def worker():
            for _ in range(10_000):
                registry.incr("hits")

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.get("hits") == 80_000

    def test_use_registry_swaps_and_restores(self):
        original = get_registry()
        fresh = MetricsRegistry()
        with use_registry(fresh):
            assert get_registry() is fresh
        assert get_registry() is original


class TestSelectionTrace:
    def _decision(self, **kw) -> SelectionDecision:
        defaults = dict(column="c", block=0, ctype="integer", depth=3,
                        value_count=10, input_bytes=40, sample_count=4)
        defaults.update(kw)
        return SelectionDecision(**defaults)

    def test_finish_computes_achieved_ratio(self):
        decision = self._decision(input_bytes=100)
        decision.finish(25)
        assert decision.achieved_ratio == 4.0
        assert decision.to_dict()["compressed_bytes"] == 25

    def test_bounded_recording_drops_beyond_cap(self):
        trace = SelectionTrace(max_decisions=3)
        for i in range(5):
            trace.record(self._decision(block=i))
        assert len(trace) == 3
        assert trace.dropped == 2
        trace.clear()
        assert len(trace) == 0 and trace.dropped == 0

    def test_per_column_aggregates_top_level_only(self):
        trace = SelectionTrace()
        top = self._decision(column="a", chosen="rle", estimated_ratio=4.0)
        top.finish(10)
        child = self._decision(column="a", top_level=False, chosen="fastbp128")
        trace.record(top)
        trace.record(child)
        (summary,) = trace.per_column()
        assert summary["column"] == "a"
        assert summary["schemes"] == {"rle": 1}
        assert summary["achieved_ratio"] == 4.0
        assert summary["estimated_ratio"] == 4.0

    def test_use_trace_swaps_and_restores(self):
        original = get_trace()
        fresh = SelectionTrace()
        with use_trace(fresh):
            assert get_trace() is fresh
        assert get_trace() is original


class TestPipelineWiring:
    def test_compress_records_counters_and_trace(self, isolated, relation):
        registry, trace = isolated
        compressed = compress_relation(relation)
        counters = registry.snapshot()["counters"]
        assert counters["compress.columns"] == 3
        assert counters["compress.rows"] == 3 * 4000
        assert counters["compress.input_bytes"] == relation.nbytes
        assert counters["compress.output_bytes"] == sum(
            len(b.data) for c in compressed.columns for b in c.blocks
        )
        assert registry.timer_seconds("compress") > 0
        top_level = [d for d in trace.decisions() if d.top_level]
        assert {d.column for d in top_level} == {"price", "city", "qty"}
        assert all(d.achieved_ratio is not None for d in top_level)
        assert all(d.candidates for d in top_level)

    def test_decompress_records_counters(self, isolated, relation):
        registry, _ = isolated
        compressed = compress_relation(relation)
        decompress_relation(compressed)
        counters = registry.snapshot()["counters"]
        assert counters["decompress.columns"] == 3
        assert counters["decompress.rows"] == 3 * 4000
        assert registry.timer_seconds("decompress") > 0

    def test_block_level_counters(self, isolated):
        registry, _ = isolated
        values = np.repeat(np.arange(5, dtype=np.int32), 100)
        blob = compress_block(values, ColumnType.INTEGER)
        decompress_block(blob, ColumnType.INTEGER)
        counters = registry.snapshot()["counters"]
        assert counters["compress.blocks"] == 1
        assert counters["decompress.blocks"] == 1
        assert counters["decompress.input_bytes"] == len(blob)

    def test_selection_timer_tracks_selector_seconds(self, isolated, relation):
        registry, _ = isolated
        compress_relation(relation)
        assert registry.timer_seconds("selection") > 0

    def test_estimated_vs_achieved_within_sanity_band(self, isolated, relation):
        """Sampling estimates must land in the ballpark of reality (§6.6)."""
        _, trace = isolated
        compress_relation(relation)
        for summary in trace.per_column():
            est, ach = summary["estimated_ratio"], summary["achieved_ratio"]
            assert est is not None and ach is not None
            assert est > 0 and ach > 0


class TestCloudWiring:
    def test_scan_counters(self, isolated, relation):
        registry, _ = isolated
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        result = scan_btrblocks_columns(store, "obs", [0])
        counters = registry.snapshot()["counters"]
        assert counters["cloud.scan.scans"] == 1
        assert counters["cloud.scan.requests"] == result.requests
        assert counters["cloud.scan.bytes"] == result.bytes_downloaded
        assert counters["cloud.scan.cost_usd"] > 0

    def test_remote_table_counters(self, isolated, relation):
        registry, _ = isolated
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        table = RemoteTable.open(store, "obs")
        table.scan(columns=["price"])
        table.scan(columns=["price"])  # cached: no second download
        counters = registry.snapshot()["counters"]
        assert counters["cloud.table.scans"] == 2
        assert counters["cloud.table.objects_fetched"] == 2  # meta + one column
        assert counters["cloud.table.bytes"] > 0
        assert counters["cloud.table.cost_usd"] > 0


class TestReport:
    def test_report_schema(self, isolated, relation):
        registry, trace = isolated
        compressed = compress_relation(relation)
        store = SimulatedObjectStore()
        upload_btrblocks(store, compressed)
        scan_btrblocks_columns(store, "obs", [0, 1])
        report = build_report(registry, trace)
        assert set(report) == {"counters", "timers", "columns", "trace"}
        assert {c["column"] for c in report["columns"]} == {"price", "city", "qty"}
        for column in report["columns"]:
            assert column["schemes"]
            assert column["estimated_ratio"] is not None
            assert column["achieved_ratio"] is not None
        assert "compress" in report["timers"]
        assert report["counters"]["cloud.scan.scans"] == 1
        assert report["trace"]["decisions_recorded"] == len(trace)

    def test_report_json_round_trips(self, isolated, relation):
        registry, trace = isolated
        compress_relation(relation)
        parsed = json.loads(report_json(registry, trace, include_decisions=True))
        assert parsed["decisions"]
        decision = parsed["decisions"][0]
        assert {"column", "chosen", "candidates", "estimated_ratio"} <= set(decision)


class TestCli:
    @pytest.fixture
    def csv_path(self, tmp_path, relation):
        path = tmp_path / "obs.csv"
        path.write_text(relation_to_csv(relation), encoding="utf-8")
        return path

    def test_stats_prints_report(self, csv_path, capsys):
        assert main(["stats", str(csv_path)]) == 0
        report = json.loads(capsys.readouterr().out)
        assert {c["column"] for c in report["columns"]} == {"price", "city", "qty"}
        assert report["counters"]["compress.columns"] == 3

    def test_stats_writes_file_with_decisions(self, csv_path, tmp_path, capsys):
        out = tmp_path / "report.json"
        assert main(["stats", str(csv_path), "--decisions", "-o", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["decisions"]

    def test_compress_trace_flag(self, csv_path, tmp_path, capsys):
        btr = tmp_path / "obs.btr"
        trace_path = tmp_path / "trace.json"
        assert main([
            "compress", str(csv_path), str(btr), "--trace", str(trace_path)
        ]) == 0
        report = json.loads(trace_path.read_text())
        assert report["columns"]
        assert report["decisions"]
        assert report["counters"]["compress.input_bytes"] > 0
