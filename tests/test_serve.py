"""Deterministic concurrency suite for the multi-tenant scan server.

Three layers, bottom up:

1. the :class:`~repro.cloud.retry.SimulatedClock` timer heap (the regression
   suite for its move from single-owner to multi-coroutine),
2. the :mod:`repro.serve.loop` event loop (FIFO ready queue, timer-driven
   wake-ups, deadlock detection, unobserved failures),
3. the :class:`~repro.serve.server.ScanServer` invariants: served bytes are
   bit-identical to a sequential ``RemoteTable.scan`` oracle across seeds ×
   tenant counts × fault profiles; point reads are never starved behind
   scan convoys (fairness); the wait queue never exceeds its bound and
   rejections are typed and billed zero (backpressure).

Everything runs on simulated time from fixed seeds — a failure here replays
bit-identically under the same ``REPRO_SERVE_SEED``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.cloud.faults import FaultProfile
from repro.cloud.objectstore import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable
from repro.cloud.retry import RetryPolicy, SimulatedClock
from repro.exceptions import AdmissionRejectedError, ServeDeadlockError
from repro.observe import MetricsRegistry, use_registry
from repro.serve import (
    Event,
    EventLoop,
    ScanRequest,
    ScanServer,
    WorkloadSpec,
    build_catalog,
    gather,
    generate_workload,
    serve_workload,
    sleep,
)
from repro.types import columns_equal

#: Deterministic default; CI's serve-matrix job also runs one randomized
#: seed (echoed in its log) through this knob.
SERVE_SEED = int(os.environ.get("REPRO_SERVE_SEED", "202408"), 0)


# -- SimulatedClock timer heap -------------------------------------------------


class TestSimulatedClockTimers:
    def test_timers_fire_in_deadline_order(self):
        clock = SimulatedClock()
        fired = []
        clock.call_later(0.3, lambda: fired.append(("a", clock.now_seconds)))
        clock.call_later(0.1, lambda: fired.append(("b", clock.now_seconds)))
        clock.call_later(0.2, lambda: fired.append(("c", clock.now_seconds)))
        clock.advance(0.5)
        assert fired == [("b", 0.1), ("c", 0.2), ("a", 0.3)]
        assert clock.now_seconds == 0.5

    def test_same_deadline_fires_in_schedule_order(self):
        clock = SimulatedClock()
        fired = []
        for tag in "abc":
            clock.call_at(1.0, lambda tag=tag: fired.append(tag))
        clock.advance_to(1.0)
        assert fired == ["a", "b", "c"]

    def test_callback_scheduling_inside_window_fires_same_advance(self):
        # The single-owner clock regression: a timer's callback arms another
        # timer that is still inside the advance window. It must fire during
        # the same advance, at its own deadline, not be silently jumped over.
        clock = SimulatedClock()
        fired = []
        clock.call_at(0.1, lambda: clock.call_at(0.2, lambda: fired.append(0.2)))
        clock.call_at(0.3, lambda: fired.append(0.3))
        clock.advance_to(0.5)
        assert fired == [0.2, 0.3]

    def test_cancelled_timers_are_skipped(self):
        clock = SimulatedClock()
        fired = []
        timer = clock.call_later(0.1, lambda: fired.append("cancelled"))
        clock.call_later(0.2, lambda: fired.append("kept"))
        timer.cancel()
        clock.advance(1.0)
        assert fired == ["kept"]

    def test_advance_to_next_jumps_to_earliest(self):
        clock = SimulatedClock()
        fired = []
        clock.call_later(0.7, lambda: fired.append("later"))
        clock.call_later(0.4, lambda: fired.append("sooner"))
        assert clock.next_deadline() == 0.4
        assert clock.advance_to_next() is True
        assert clock.now_seconds == 0.4
        assert fired == ["sooner"]
        assert clock.advance_to_next() is True
        assert clock.advance_to_next() is False

    def test_past_deadline_is_never_reentrant(self):
        clock = SimulatedClock()
        clock.advance(1.0)
        fired = []
        clock.call_at(0.0, lambda: fired.append("past"))
        assert fired == []  # only a later advance fires it
        clock.advance(0.0)
        assert fired == ["past"]
        assert clock.now_seconds == 1.0

    def test_cancel_at_the_same_deadline_settles_in_timer_order(self):
        # Two timers tied at t=1.0; the first one's callback cancels the
        # second. Ties resolve in schedule order, so the cancellation wins
        # and the second must not fire — this is the race the server's
        # queue-expiry timers depend on.
        clock = SimulatedClock()
        fired = []
        timers = {}
        timers["first"] = clock.call_at(
            1.0, lambda: (fired.append("first"), timers["second"].cancel())
        )
        timers["second"] = clock.call_at(1.0, lambda: fired.append("second"))
        clock.advance_to(1.0)
        assert fired == ["first"]

    def test_cancel_after_fire_is_a_noop(self):
        clock = SimulatedClock()
        fired = []
        timer = clock.call_later(0.1, lambda: fired.append("fired"))
        clock.advance(0.2)
        timer.cancel()  # already fired: cancelling must not blow up
        clock.advance(1.0)
        assert fired == ["fired"]

    def test_legacy_sleep_still_accumulates(self):
        clock = SimulatedClock()
        clock.sleep(1.5)
        clock.sleep(-3.0)  # negative clamps, never rewinds
        assert clock.now_seconds == 1.5

    def test_reset_clears_timers(self):
        clock = SimulatedClock()
        fired = []
        clock.call_later(0.1, lambda: fired.append("stale"))
        clock.reset()
        assert clock.now_seconds == 0.0
        clock.advance(1.0)
        assert fired == []


# -- the deterministic event loop ----------------------------------------------


class TestEventLoop:
    def test_sleeps_interleave_deterministically(self):
        loop = EventLoop()
        order = []

        async def worker(name, delay):
            await sleep(delay)
            order.append((name, loop.now_seconds))

        loop.create_task(worker("a", 0.3), "a")
        loop.create_task(worker("b", 0.1), "b")
        loop.create_task(worker("c", 0.1), "c")
        loop.run()
        assert order == [("b", 0.1), ("c", 0.1), ("a", 0.3)]

    def test_gather_returns_results_in_order(self):
        loop = EventLoop()

        async def value(v, delay):
            await sleep(delay)
            return v

        async def main():
            tasks = [
                loop.create_task(value(i, 0.1 * (3 - i)), f"v{i}") for i in range(3)
            ]
            return await gather(*tasks)

        assert loop.run_until_complete(main()) == [0, 1, 2]

    def test_event_wakes_waiters_in_wait_order(self):
        loop = EventLoop()
        event = Event()
        woken = []

        async def waiter(name):
            await event.wait()
            woken.append(name)

        async def setter():
            await sleep(1.0)
            event.set()

        for name in ("w0", "w1", "w2"):
            loop.create_task(waiter(name), name)
        loop.create_task(setter(), "setter")
        loop.run()
        assert woken == ["w0", "w1", "w2"]
        assert loop.now_seconds == 1.0

    def test_deadlock_is_detected_not_hung(self):
        loop = EventLoop()

        async def stuck():
            await Event().wait()  # nobody will ever set it

        loop.create_task(stuck(), "stuck-task")
        with pytest.raises(ServeDeadlockError, match="stuck-task"):
            loop.run()

    def test_unobserved_failure_is_raised(self):
        loop = EventLoop()

        async def boom():
            await sleep(0.1)
            raise ValueError("lost in a task")

        loop.create_task(boom(), "boom")
        with pytest.raises(ValueError, match="lost in a task"):
            loop.run()

    def test_awaited_failure_propagates_to_awaiter_only(self):
        loop = EventLoop()
        caught = []

        async def boom():
            raise ValueError("expected")

        async def main():
            task = loop.create_task(boom(), "boom")
            try:
                await task
            except ValueError as error:
                caught.append(str(error))

        loop.run_until_complete(main())
        assert caught == ["expected"]

    def test_event_wait_timeout_returns_false_at_the_deadline(self):
        loop = EventLoop()
        event = Event()
        results = []

        async def waiter():
            results.append(await event.wait(timeout=0.5))

        loop.create_task(waiter(), "waiter")
        loop.run()
        assert results == [False]
        assert loop.now_seconds == 0.5

    def test_event_set_before_deadline_cancels_the_timeout_timer(self):
        loop = EventLoop()
        event = Event()
        results = []

        async def waiter():
            results.append(await event.wait(timeout=0.5))

        async def setter():
            await sleep(0.2)
            event.set()

        loop.create_task(waiter(), "waiter")
        loop.create_task(setter(), "setter")
        loop.run()
        assert results == [True]
        # The timeout timer was cancelled: the clock never had a reason to
        # advance to 0.5.
        assert loop.now_seconds == 0.2

    def test_same_instant_set_and_timeout_resolve_in_timer_order(self):
        # Both the set and the timeout land at t=0.5. Whichever *timer* was
        # scheduled first wins and cancels the loser inside the scheduler
        # callback — the racing coroutine always observes a settled result,
        # deterministically, never a double wake.
        def race(set_first: bool):
            loop = EventLoop()
            event = Event()
            results = []

            async def waiter():
                results.append(await event.wait(timeout=0.5))

            async def arm():
                loop.clock.call_at(0.5, event.set)

            if set_first:
                # Registered before the waiter even starts: lower timer seq.
                loop.clock.call_at(0.5, event.set)
                loop.create_task(waiter(), "waiter")
            else:
                # The waiter's timeout timer is armed when it first runs,
                # before arm() schedules the set: the timeout wins the tie.
                loop.create_task(waiter(), "waiter")
                loop.create_task(arm(), "arm")
            loop.run()
            assert event.is_set()  # the set always happens; the *wait* races
            return results

        assert race(set_first=True) == [True]
        assert race(set_first=False) == [False]

    def test_replays_identically(self):
        def history():
            loop = EventLoop()
            order = []

            async def worker(i):
                await sleep(0.1 * (i % 3))
                order.append(i)
                await sleep(0.05)
                order.append((i, loop.now_seconds))

            for i in range(8):
                loop.create_task(worker(i), f"w{i}")
            loop.run()
            return order

        assert history() == history()


# -- serving fixtures ----------------------------------------------------------


def _serve_setup(tables=2, rows=1000):
    registry = MetricsRegistry()
    with use_registry(registry):
        store = SimulatedObjectStore()
        profiles = build_catalog(store, tables=tables, rows=rows, seed=SERVE_SEED)
    return registry, store, profiles


def _sequential_oracle(store, responses):
    """Replay every served request sequentially, faults off, fresh handles."""
    store.set_faults(None)
    tables = {}
    for response in responses:
        request = response.request
        key = (request.table, request.on_corrupt)
        table = tables.get(key)
        if table is None:
            table = tables[key] = RemoteTable.open(
                store, request.table, on_corrupt=request.on_corrupt
            )
        columns = list(request.columns) if request.columns is not None else None
        expected = table.scan(columns, where=request.where)
        got = response.relation
        assert got.column_names() == expected.column_names(), request
        for name in expected.column_names():
            assert columns_equal(got.column(name), expected.column(name)), (
                request,
                name,
            )


FAULT_PROFILES = {
    "clean": None,
    "transient": FaultProfile(seed=7, transient_error_rate=0.15, throttle_rate=0.1),
    "damage": FaultProfile(seed=11, truncate_rate=0.1, corrupt_rate=0.05),
}

#: Enough attempts that the moderate fault rates above always recover (the
#: schedule is seeded, so "always" is checked, not hoped for).
AMPLE_RETRY = RetryPolicy(max_attempts=8)


# -- oracle equality -----------------------------------------------------------


class TestServedBytesMatchSequentialOracle:
    @pytest.mark.parametrize("tenants", [2, 8])
    @pytest.mark.parametrize("profile", sorted(FAULT_PROFILES))
    def test_concurrent_equals_sequential(self, tenants, profile):
        registry, store, profiles = _serve_setup()
        with use_registry(registry):
            store.retry = AMPLE_RETRY
            store.set_faults(FAULT_PROFILES[profile])
            spec = WorkloadSpec(
                tenants=tenants, requests_per_tenant=4, seed=SERVE_SEED
            )
            run = serve_workload(
                store, profiles, spec, max_concurrency=3, queue_limit=64
            )
            assert run["responses"], "workload served nothing"
            assert not run["rejected"]  # queue_limit=64 is ample here
            _sequential_oracle(store, run["responses"])

    @pytest.mark.parametrize("seed_offset", [0, 1, 2])
    def test_concurrent_equals_sequential_across_seeds(self, seed_offset):
        registry, store, profiles = _serve_setup()
        with use_registry(registry):
            store.retry = AMPLE_RETRY
            store.set_faults(FaultProfile(seed=3, transient_error_rate=0.15))
            spec = WorkloadSpec(
                tenants=4, requests_per_tenant=4, seed=SERVE_SEED + seed_offset
            )
            run = serve_workload(
                store, profiles, spec, max_concurrency=4, queue_limit=64
            )
            assert run["responses"]
            _sequential_oracle(store, run["responses"])

    def test_serving_replays_bit_identically(self):
        def run_once():
            registry, store, profiles = _serve_setup(tables=1, rows=600)
            with use_registry(registry):
                spec = WorkloadSpec(tenants=3, requests_per_tenant=3, seed=SERVE_SEED)
                run = serve_workload(store, profiles, spec, max_concurrency=2)
            return [
                (
                    r.request.tenant,
                    r.arrived_seconds,
                    r.started_seconds,
                    r.finished_seconds,
                    r.requests,
                    r.bytes_fetched,
                    r.cost_usd,
                )
                for r in run["responses"]
            ]

        assert run_once() == run_once()


# -- fairness ------------------------------------------------------------------


class TestFairness:
    #: A point read must never wait longer than this many large-scan service
    #: times (the ISSUE's K).
    K = 3

    def test_point_read_not_starved_behind_scan_convoy(self):
        registry, store, profiles = _serve_setup(tables=1, rows=2000)
        with use_registry(registry):
            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=1, queue_limit=32)
            profile = profiles[0]
            point_value = profile.point_values["code"][0]
            responses = []

            async def run(request):
                responses.append(await server.submit(request))

            # A convoy of full scans, then one point read arriving last.
            from repro.query.predicates import Equals

            for i in range(6):
                loop.create_task(
                    run(
                        ScanRequest(
                            tenant="convoy",
                            table=profile.name,
                            columns=profile.columns,
                        )
                    ),
                    f"scan{i}",
                )
            loop.create_task(
                run(
                    ScanRequest(
                        tenant="reader",
                        table=profile.name,
                        columns=("code",),
                        where={"code": Equals(point_value)},
                    )
                ),
                "point",
            )
            loop.run()

        point = next(r for r in responses if r.request.kind == "point")
        scan_service = max(
            r.service_seconds for r in responses if r.request.kind == "scan"
        )
        assert scan_service > 0
        assert point.queue_seconds <= self.K * scan_service, (
            f"point read queued {point.queue_seconds:.4f}s behind a convoy; "
            f"bound is {self.K} x {scan_service:.4f}s"
        )

    def test_point_reads_jump_queued_scans(self):
        # With one slot busy and both kinds queued, the weighted finish tags
        # must serve the point read before every still-queued full scan.
        registry, store, profiles = _serve_setup(tables=1, rows=1500)
        with use_registry(registry):
            from repro.query.predicates import Equals

            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=1, queue_limit=32)
            profile = profiles[0]
            order = []

            async def run(name, request):
                response = await server.submit(request)
                order.append((name, response.started_seconds))

            for i in range(4):
                loop.create_task(
                    run(
                        f"scan{i}",
                        ScanRequest(
                            tenant=f"t{i}", table=profile.name, columns=profile.columns
                        ),
                    ),
                    f"scan{i}",
                )
            loop.create_task(
                run(
                    "point",
                    ScanRequest(
                        tenant="reader",
                        table=profile.name,
                        columns=("code",),
                        where={"code": Equals(profile.point_values["code"][0])},
                    ),
                ),
                "point",
            )
            loop.run()

        started = {name: t for name, t in order}
        # scan0 was already running; the point read must start before the
        # scans that were *queued* alongside it.
        for queued in ("scan1", "scan2", "scan3"):
            assert started["point"] <= started[queued]


# -- backpressure --------------------------------------------------------------


class TestBackpressure:
    def test_queue_never_exceeds_bound_and_rejections_bill_zero(self):
        registry, store, profiles = _serve_setup(tables=1, rows=800)
        with use_registry(registry):
            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=1, queue_limit=2)
            profile = profiles[0]
            rejected = []
            responses = []

            async def run(tenant):
                request = ScanRequest(
                    tenant=tenant, table=profile.name, columns=profile.columns
                )
                try:
                    responses.append(await server.submit(request))
                except AdmissionRejectedError as error:
                    rejected.append((tenant, error))

            # Six arrivals in the same instant: 1 runs, 2 queue, 3 bounce.
            for i in range(6):
                loop.create_task(run(f"tenant-{i}"), f"t{i}")
            loop.run()

        assert len(responses) == 3
        assert len(rejected) == 3
        assert server.queue_peak <= server.queue_limit
        for tenant, error in rejected:
            assert isinstance(error, AdmissionRejectedError)
            ledger = server.ledgers[tenant]
            assert ledger.rejected == 1
            assert ledger.get_requests == 0
            assert ledger.bytes_fetched == 0
            assert ledger.cost_usd == 0.0
        assert registry.get("server.rejected") == 3

    def test_rejection_happens_before_any_store_traffic(self):
        registry, store, profiles = _serve_setup(tables=1, rows=800)
        with use_registry(registry):
            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=1, queue_limit=0)
            profile = profiles[0]
            outcomes = []

            async def run(tenant):
                request = ScanRequest(
                    tenant=tenant, table=profile.name, columns=("code",)
                )
                try:
                    await server.submit(request)
                    outcomes.append((tenant, "served"))
                except AdmissionRejectedError:
                    outcomes.append((tenant, "rejected"))

            loop.create_task(run("first"), "first")
            before = store.stats.get_requests
            loop.create_task(run("second"), "second")
            loop.run()

        assert ("first", "served") in outcomes
        assert ("second", "rejected") in outcomes
        # The rejected tenant added nothing to the store's request count
        # beyond what the served scan moved.
        served = server.ledgers["first"]
        assert store.stats.get_requests - before == served.get_requests

    def test_queue_peak_tracks_workload_pressure(self):
        registry, store, profiles = _serve_setup(tables=2, rows=800)
        with use_registry(registry):
            spec = WorkloadSpec(tenants=12, requests_per_tenant=4, seed=SERVE_SEED)
            run = serve_workload(
                store, profiles, spec, max_concurrency=2, queue_limit=8
            )
        server = run["server"]
        assert server.queue_peak <= 8
        assert server.active_peak <= 2
        assert len(run["responses"]) + len(run["rejected"]) == 48
        for request in run["rejected"]:
            ledger = server.ledgers[request.tenant]
            assert ledger.rejected >= 1


# -- end-to-end sweep smoke ----------------------------------------------------


class TestServeBenchSmoke:
    def test_sweep_reports_required_fields(self):
        from repro.serve.bench import run_serve_bench

        with use_registry(MetricsRegistry()):
            report = run_serve_bench(
                tenant_sweep=(1, 16),
                rows=800,
                tables=2,
                requests_per_tenant=3,
                seed=SERVE_SEED,
            )
        assert [level["tenants"] for level in report["levels"]] == [1, 16]
        for level in report["levels"]:
            for key in (
                "p50_latency_seconds",
                "p99_latency_seconds",
                "cache_hit_rate",
                "cost_usd_per_query",
            ):
                assert key in level
        # The acceptance bound: shared caches keep 16-tenant $/query within
        # 1.1x of single-tenant on the hot-table workload.
        assert report["cost_ratio_16_vs_1"] <= 1.1

    def test_latencies_are_simulated_not_measured(self):
        import time

        from repro.serve.bench import run_serve_bench

        with use_registry(MetricsRegistry()):
            started = time.monotonic()
            report = run_serve_bench(
                tenant_sweep=(4,), rows=600, tables=1, requests_per_tenant=3
            )
            elapsed = time.monotonic() - started
        level = report["levels"][0]
        assert level["simulated_seconds"] > 0
        # Wall time must not scale with simulated time (generous CI margin).
        assert elapsed < 60
