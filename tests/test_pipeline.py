"""Pipelined cloud-scan accounting, the streaming parser, and the caches.

Covers the analytic ``max(fetch, decode)`` pipeline recurrence against an
independently-coded bounded-buffer reference, the byte-budget LRU and
decode-cache semantics, :class:`ColumnStreamParser` equivalence with the
batch parser (including error parity), retry backoff flowing into both the
pipeline report and :class:`ScanMetrics`, and ``scan_pipelined`` producing
bit-identical results to the batch ``scan`` — with damaged columns counted
as fallbacks rather than diverging.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import (
    FaultProfile,
    PipelinedScanReport,
    PricingModel,
    RemoteTable,
    ScanCostModel,
    SimulatedObjectStore,
    pipeline_schedule,
    pipelined_fetch_column,
)
from repro.cloud.scan import (
    scan_btrblocks_columns,
    scan_btrblocks_columns_pipelined,
    upload_btrblocks,
)
from repro.core.cache import ByteBudgetLRU, DecodeCache
from repro.core.compressor import compress_column, compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.file_format import (
    ColumnStreamParser,
    column_from_bytes,
    column_to_bytes,
)
from repro.core.relation import Relation
from repro.exceptions import FormatError, IntegrityError
from repro.observe import MetricsRegistry, use_registry
from repro.types import Column, columns_equal

#: Small chunks so a few-KB column spans many range GETs — the pipeline is
#: only interesting when there is more than one chunk to overlap.
SMALL_CHUNKS = PricingModel(chunk_bytes=1024)


def _relation(rows: int = 4000) -> Relation:
    rng = np.random.default_rng(7)
    return Relation(
        "t",
        [
            Column.ints("a", rng.integers(0, 255, rows)),
            Column.doubles("b", np.round(rng.uniform(0, 100, rows), 2)),
            Column.strings("c", [f"item-{i % 50:03d}" for i in range(rows)]),
        ],
    )


def _uploaded_store(compressed, **store_kwargs):
    store = SimulatedObjectStore(**store_kwargs)
    upload_btrblocks(store, compressed)
    return store


# -- the pipeline recurrence ---------------------------------------------------


def _reference_wall(fetch, decode, readahead: int) -> float:
    """Bounded-buffer reference simulation, coded independently.

    ``readahead`` buffer tokens; a chunk claims the earliest-free token
    before its (serial) fetch starts and releases it when its (serial,
    in-order) decode completes.
    """
    tokens = [0.0] * readahead
    fetcher = decoder = wall = 0.0
    for f, d in zip(fetch, decode):
        earliest = min(tokens)
        done = max(fetcher, earliest) + f
        fetcher = done
        decoded = max(done, decoder) + d
        decoder = decoded
        tokens[tokens.index(earliest)] = decoded
        wall = decoded
    return wall


class TestPipelineSchedule:
    def test_readahead_one_is_serial(self):
        fetch, decode = [3.0, 1.0, 2.0], [0.5, 4.0, 0.25]
        schedule = pipeline_schedule(fetch, decode, readahead=1)
        assert schedule.wall_seconds == pytest.approx(sum(fetch) + sum(decode))

    def test_fetch_bound_closed_form(self):
        # Decode always keeps up: wall = all fetches + the last decode.
        fetch, decode = [2.0] * 6, [0.5] * 6
        schedule = pipeline_schedule(fetch, decode, readahead=4)
        assert schedule.wall_seconds == pytest.approx(sum(fetch) + decode[-1])

    def test_decode_bound_closed_form(self):
        # Fetch always keeps up: wall = first fetch + all decodes.
        fetch, decode = [0.25] * 6, [2.0] * 6
        schedule = pipeline_schedule(fetch, decode, readahead=4)
        assert schedule.wall_seconds == pytest.approx(fetch[0] + sum(decode))

    def test_bounds_and_monotonic_in_readahead(self):
        rng = np.random.default_rng(11)
        fetch = rng.uniform(0.1, 2.0, 12).tolist()
        decode = rng.uniform(0.1, 2.0, 12).tolist()
        previous = float("inf")
        for k in (1, 2, 3, 6, 12, 100):
            wall = pipeline_schedule(fetch, decode, readahead=k).wall_seconds
            assert wall <= previous + 1e-12
            assert max(sum(fetch), sum(decode)) <= wall <= sum(fetch) + sum(decode) + 1e-12
            previous = wall

    @pytest.mark.parametrize("readahead", [1, 2, 3, 5, 8])
    def test_matches_reference_simulation(self, readahead):
        rng = np.random.default_rng(readahead)
        for _ in range(20):
            n = int(rng.integers(1, 16))
            fetch = rng.uniform(0.01, 3.0, n).tolist()
            decode = rng.uniform(0.01, 3.0, n).tolist()
            schedule = pipeline_schedule(fetch, decode, readahead=readahead)
            assert schedule.wall_seconds == pytest.approx(
                _reference_wall(fetch, decode, readahead)
            )

    def test_large_readahead_converges(self):
        # Past n chunks, more readahead cannot help: the window never binds.
        rng = np.random.default_rng(3)
        fetch = rng.uniform(0.1, 1.0, 10).tolist()
        decode = rng.uniform(0.1, 1.0, 10).tolist()
        at_n = pipeline_schedule(fetch, decode, readahead=10).wall_seconds
        beyond = pipeline_schedule(fetch, decode, readahead=10_000).wall_seconds
        assert beyond == pytest.approx(at_n)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            pipeline_schedule([1.0], [1.0], readahead=0)
        with pytest.raises(ValueError):
            pipeline_schedule([1.0, 2.0], [1.0], readahead=2)

    def test_empty_schedule(self):
        assert pipeline_schedule([], [], readahead=2).wall_seconds == 0.0


# -- caches --------------------------------------------------------------------


class TestByteBudgetLRU:
    def test_evicts_least_recent_under_budget(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            lru = ByteBudgetLRU(100, metric_prefix="t")
            lru.put("a", 1, 40)
            lru.put("b", 2, 40)
            assert lru.get("a") == 1  # touch: b is now least recent
            lru.put("c", 3, 40)
            assert "b" not in lru and lru.get("a") == 1 and lru.get("c") == 3
        assert registry.get("t.evict") == 1
        assert registry.get("t.hit") == 3
        assert lru.current_bytes == 80

    def test_miss_counted(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            lru = ByteBudgetLRU(10, metric_prefix="t")
            assert lru.get("nope") is None
        assert registry.get("t.miss") == 1

    def test_oversized_value_not_stored(self):
        lru = ByteBudgetLRU(100)
        lru.put("big", 1, 101)
        assert "big" not in lru and lru.current_bytes == 0

    def test_replacing_key_adjusts_budget(self):
        lru = ByteBudgetLRU(100)
        lru.put("k", 1, 60)
        lru.put("k", 2, 30)
        assert lru.get("k") == 2 and lru.current_bytes == 30

    def test_zero_capacity_stores_nothing(self):
        lru = ByteBudgetLRU(0)
        lru.put("k", 1, 1)
        assert len(lru) == 0 and lru.get("k") is None


class TestDecodeCache:
    def test_size_mismatch_is_a_miss(self):
        cache = DecodeCache(1 << 20)
        cache.put("k", np.arange(8, dtype=np.int32))
        out = np.zeros(4, dtype=np.int32)
        assert not cache.get_into("k", out)

    def test_entries_are_insulated_copies(self):
        cache = DecodeCache(1 << 20)
        source = np.arange(8, dtype=np.int32)
        cache.put("k", source)
        source[:] = -1
        out = np.empty(8, dtype=np.int32)
        assert cache.get_into("k", out)
        assert np.array_equal(out, np.arange(8, dtype=np.int32))


# -- streaming parser ----------------------------------------------------------


class TestColumnStreamParser:
    def _column_bytes(self) -> bytes:
        rng = np.random.default_rng(5)
        column = Column.ints("v", rng.integers(0, 1000, 2000))
        return column_to_bytes(compress_column(column, BtrBlocksConfig(block_size=512)))

    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 10_000])
    def test_equivalent_to_batch_parser(self, chunk_size):
        blob = self._column_bytes()
        batch = column_from_bytes(blob)
        parser = ColumnStreamParser()
        streamed_blocks = []
        for start in range(0, len(blob), chunk_size):
            streamed_blocks.extend(parser.feed(blob[start : start + chunk_size]))
        column = parser.finish()
        assert parser.complete
        assert column.name == batch.name and column.ctype is batch.ctype
        assert len(streamed_blocks) == len(batch.blocks) == len(column.blocks)
        for mine, theirs in zip(column.blocks, batch.blocks):
            assert mine.count == theirs.count
            assert mine.data == theirs.data
            assert mine.nulls == theirs.nulls
            assert mine.checksum == theirs.checksum

    def test_truncated_stream_raises(self):
        column = compress_column(
            Column.ints("v", np.random.default_rng(5).integers(0, 1000, 2000)),
            BtrBlocksConfig(block_size=512),
        )
        blob = column_to_bytes(column, with_stats=False)
        parser = ColumnStreamParser()
        parser.feed(blob[:-5])
        assert not parser.complete
        with pytest.raises(FormatError):
            parser.finish()

    def test_truncated_stats_footer_drops_stats_only(self):
        # Every block arrived; only the trailing statistics footer is cut
        # short. Data decodes fine — the stats are just marked invalid.
        blob = self._column_bytes()
        parser = ColumnStreamParser()
        parser.feed(blob[:-5])
        assert parser.complete
        column = parser.finish()
        assert column.stats_invalid
        assert column.block_stats is None
        batch = column_from_bytes(self._column_bytes())
        for mine, theirs in zip(column.blocks, batch.blocks):
            assert mine.data == theirs.data

    def test_bad_magic_parity_with_batch_parser(self):
        blob = self._column_bytes()
        damaged = b"XXXX" + blob[4:]
        with pytest.raises(FormatError):
            column_from_bytes(damaged)
        with pytest.raises(FormatError):
            ColumnStreamParser().feed(damaged)

    def test_header_crc_damage_parity(self):
        blob = bytearray(self._column_bytes())
        blob[5] ^= 0x01  # inside the checksummed v2 header (type/name bytes)
        with pytest.raises((IntegrityError, FormatError)):
            column_from_bytes(bytes(blob))
        with pytest.raises((IntegrityError, FormatError)):
            ColumnStreamParser().feed(bytes(blob))


# -- retry accounting ----------------------------------------------------------


class TestRetryAccounting:
    def test_backoff_flows_into_pipeline_stats(self):
        compressed = compress_relation(_relation())
        store = _uploaded_store(
            compressed,
            pricing=SMALL_CHUNKS,
            faults=FaultProfile(seed=2, throttle_rate=0.2),
        )
        import json

        meta = json.loads(store.get(f"{compressed.name}/table.meta").decode("utf-8"))
        backoff_before = store.stats.backoff_seconds
        retries_before = store.stats.retries
        _column, _compressed, stats = pipelined_fetch_column(
            store, meta["columns"][0]["file"], readahead=3,
            rows_hint=meta["columns"][0].get("rows"),
        )
        assert store.stats.retries > retries_before
        assert stats.retry_seconds > 0
        assert stats.retry_seconds == pytest.approx(
            store.stats.backoff_seconds - backoff_before
        )

    def test_backoff_flows_into_scan_metrics(self):
        compressed = compress_relation(_relation())
        store = _uploaded_store(
            compressed,
            pricing=SMALL_CHUNKS,
            faults=FaultProfile(seed=2, throttle_rate=0.2),
        )
        _result, report = scan_btrblocks_columns_pipelined(
            store, compressed.name, [0, 1, 2], readahead=3
        )
        assert report.retry_seconds > 0
        metrics = ScanCostModel(store.pricing).simulate(
            "p", 1_000_000, 100_000, 0.001, retry_seconds=report.retry_seconds
        )
        assert metrics.retry_seconds == report.retry_seconds
        assert metrics.wall_seconds == pytest.approx(
            max(metrics.network_seconds, metrics.cpu_seconds) + report.retry_seconds
        )

    def test_clock_advances_by_pipelined_wall(self):
        compressed = compress_relation(_relation())
        store = _uploaded_store(compressed, pricing=SMALL_CHUNKS)
        before = store.clock.now_seconds
        _result, report = scan_btrblocks_columns_pipelined(
            store, compressed.name, [0, 1, 2], readahead=4
        )
        assert report.retry_seconds == 0.0
        assert store.clock.now_seconds - before == pytest.approx(report.wall_seconds)

    def test_accounting_parity_with_batch_scan(self):
        compressed = compress_relation(_relation())
        batch_store = _uploaded_store(compressed, pricing=SMALL_CHUNKS)
        pipe_store = _uploaded_store(compressed, pricing=SMALL_CHUNKS)
        batch = scan_btrblocks_columns(batch_store, compressed.name, [0, 1, 2])
        piped, report = scan_btrblocks_columns_pipelined(
            pipe_store, compressed.name, [0, 1, 2], readahead=4
        )
        assert piped.requests == batch.requests
        assert piped.bytes_downloaded == batch.bytes_downloaded
        assert report.chunks == piped.requests - 1  # all but the metadata GET
        assert report.wall_seconds <= report.serial_seconds + 1e-12


# -- end-to-end scan identity --------------------------------------------------


class TestScanPipelined:
    def test_bit_identical_to_batch_scan(self):
        relation = _relation()
        compressed = compress_relation(relation)
        batch_table = RemoteTable.open(
            _uploaded_store(compressed, pricing=SMALL_CHUNKS), relation.name
        )
        pipe_table = RemoteTable.open(
            _uploaded_store(compressed, pricing=SMALL_CHUNKS), relation.name
        )
        batch = batch_table.scan()
        piped, report = pipe_table.scan_pipelined()
        assert report.fallbacks == 0
        assert report.columns == len(relation.columns)
        for mine, theirs in zip(piped.columns, batch.columns):
            assert columns_equal(mine, theirs)

    def test_repeat_scan_served_from_decode_cache(self):
        relation = _relation()
        compressed = compress_relation(relation)
        registry = MetricsRegistry()
        with use_registry(registry):
            table = RemoteTable.open(
                _uploaded_store(compressed, pricing=SMALL_CHUNKS), relation.name
            )
            _first, first_report = table.scan_pipelined()
            _second, second_report = table.scan_pipelined()
        assert first_report.cache_hits == 0
        assert second_report.cache_hits > 0
        assert second_report.chunks == 0  # columns came from the column LRU

    def test_damaged_column_counts_as_fallback_and_matches_batch(self):
        relation = _relation()
        compressed = compress_relation(relation)

        def damaged_store():
            store = _uploaded_store(compressed, pricing=SMALL_CHUNKS)
            key = f"{relation.name}/col_0000.btr"
            blob = bytearray(store.get(key))
            # Damage the payload of the last *block* (the file now ends with
            # the stats footer, so -3 would only graze the statistics).
            from repro.core.file_format import column_block_ranges

            offset, size = column_block_ranges(compressed.columns[0])[-1]
            blob[offset + size - 3] ^= 0x20  # CRC must catch it
            store.put(key, bytes(blob))
            store.stats.reset()
            return store

        registry = MetricsRegistry()
        with use_registry(registry):
            pipe_table = RemoteTable.open(
                damaged_store(), relation.name, on_corrupt="null_block"
            )
            piped, report = pipe_table.scan_pipelined()
            batch_table = RemoteTable.open(
                damaged_store(), relation.name, on_corrupt="null_block"
            )
            batch = batch_table.scan()
        assert report.fallbacks == 1
        assert registry.get("cloud.scan.pipeline.fallbacks") == 1
        assert registry.get("cloud.table.integrity_refetches") > 0
        for mine, theirs in zip(piped.columns, batch.columns):
            assert columns_equal(mine, theirs)
