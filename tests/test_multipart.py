"""Multipart upload protocol semantics and write-side billing.

Covers the S3-shaped invariants the transactional write path leans on:
parts are invisible until complete, completes are atomic and idempotent,
torn parts can never complete, aborts are free and reclaim staged bytes —
plus the regression test for ``put_many``'s old partial-failure bug.
"""

from __future__ import annotations

import os

import pytest

from repro.cloud import FaultProfile, SimulatedObjectStore
from repro.exceptions import (
    MultipartUploadError,
    NoSuchUploadError,
    ObjectStoreError,
    RetryExhaustedError,
    TornWriteError,
    WriterCrashError,
)
from repro.observe import MetricsRegistry, use_registry

SEED = int(os.environ.get("REPRO_FAULT_SEED", "192024773"), 0)


def make_store(profile: "FaultProfile | None" = None) -> SimulatedObjectStore:
    return SimulatedObjectStore(faults=profile)


class TestProtocol:
    def test_parts_invisible_until_complete(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"hello ")
        store.upload_part(uid, 2, b"world")
        assert store.keys() == []
        with pytest.raises(Exception):
            store.get("t/obj")
        store.complete_multipart(uid)
        assert store.keys() == ["t/obj"]
        assert store.get("t/obj") == b"hello world"

    def test_parts_assemble_in_part_number_order(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 2, b"world")
        store.upload_part(uid, 1, b"hello ")
        store.complete_multipart(uid)
        assert store.get("t/obj") == b"hello world"

    def test_part_reupload_overwrites(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"bad")
        store.upload_part(uid, 1, b"good")
        store.complete_multipart(uid)
        assert store.get("t/obj") == b"good"

    def test_complete_is_idempotent(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"data")
        store.complete_multipart(uid)
        store.complete_multipart(uid)  # no error, no change
        assert store.get("t/obj") == b"data"

    def test_abort_reclaims_and_invalidates(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"abcd")
        assert store.staged_bytes("t/") == 4
        assert store.abort_multipart(uid) == 4
        assert store.staged_bytes("t/") == 0
        assert store.keys() == []
        with pytest.raises(NoSuchUploadError):
            store.upload_part(uid, 2, b"more")
        with pytest.raises(NoSuchUploadError):
            store.complete_multipart(uid)
        with pytest.raises(NoSuchUploadError):
            store.abort_multipart(uid)

    def test_unknown_upload_id_rejected(self):
        store = make_store()
        with pytest.raises(NoSuchUploadError):
            store.upload_part("mpu-999999", 1, b"x")

    def test_part_numbers_start_at_one(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        with pytest.raises(MultipartUploadError):
            store.upload_part(uid, 0, b"x")

    def test_pending_uploads_listing(self):
        store = make_store()
        a = store.initiate_multipart("t/a")
        b = store.initiate_multipart("u/b")
        store.upload_part(a, 1, b"xx")
        infos = store.pending_uploads("t/")
        assert [i.upload_id for i in infos] == [a]
        assert infos[0].staged_bytes == 2
        assert {i.upload_id for i in store.pending_uploads()} == {a, b}

    def test_overwrite_via_multipart_is_atomic_swap(self):
        store = make_store()
        store.put("t/obj", b"old")
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"new!")
        assert store.get("t/obj") == b"old"  # staged parts don't leak
        store.complete_multipart(uid)
        assert store.get("t/obj") == b"new!"


class TestFaultyPuts:
    def test_torn_parts_never_corrupt_the_visible_object(self):
        # Whatever the seed does, exactly two outcomes are legal: the part
        # heals on retry and the object completes bit-perfect, or retries
        # exhaust with the part torn and the upload refuses to complete.
        # A visible torn object is never legal under multipart.
        registry = MetricsRegistry()
        with use_registry(registry):
            store = make_store(FaultProfile(seed=SEED, torn_write_rate=0.4))
            uid = store.initiate_multipart("t/obj")
            try:
                store.upload_part(uid, 1, b"A" * 1000)
            except RetryExhaustedError:
                with pytest.raises(MultipartUploadError):
                    store.complete_multipart(uid)
                assert store.keys() == []
                return
            store.complete_multipart(uid)
        assert store.get("t/obj") == b"A" * 1000

    def test_torn_part_that_never_heals_cannot_complete(self):
        # Tear every byte-carrying attempt: the part stays incomplete and
        # the upload must not be completable with it (S3's ETag check).
        store = make_store(FaultProfile(seed=SEED, torn_write_rate=1.0))
        uid = store.initiate_multipart("t/obj")
        with pytest.raises(RetryExhaustedError):
            store.upload_part(uid, 1, b"B" * 1000)
        store.set_faults(None)
        with pytest.raises(MultipartUploadError):
            store.complete_multipart(uid)
        assert store.keys() == []

    def test_duplicate_delivered_complete_is_safe(self):
        # Duplicate delivery on every attempt: each complete applies
        # server-side but loses its response, so the client retries a write
        # that already happened. The object must be installed exactly once,
        # and a later clean retry must hit the idempotent no-op path.
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"payload")
        store.set_faults(FaultProfile(seed=SEED, duplicate_delivery_rate=1.0))
        with pytest.raises(RetryExhaustedError):
            store.complete_multipart(uid)  # every response lost, client gives up
        assert store.get("t/obj") == b"payload"  # ... but the write landed, once
        store.set_faults(None)
        store.complete_multipart(uid)  # idempotent retry from a healthier client
        assert store.get("t/obj") == b"payload"

    def test_naive_put_can_tear_visibly(self):
        # The hazard that motivates the multipart path: a simple PUT that
        # exhausts retries mid-tear leaves a visible partial object.
        store = make_store(FaultProfile(seed=SEED, torn_write_rate=1.0))
        with pytest.raises(RetryExhaustedError):
            store.put("t/obj", b"C" * 1000)
        assert store.keys() == ["t/obj"]
        store.set_faults(None)
        assert len(store.get("t/obj")) < 1000

    def test_rejected_attempts_are_free(self):
        store = make_store(FaultProfile(seed=SEED, put_transient_error_rate=1.0))
        with pytest.raises(RetryExhaustedError):
            store.put("t/obj", b"D" * 100)
        assert store.stats.put_requests == 0
        assert store.stats.bytes_uploaded == 0
        assert store.stats.put_retries == store.retry.max_attempts - 1
        assert store.stats.put_backoff_seconds > 0

    def test_torn_attempt_bills_applied_prefix(self):
        store = make_store(FaultProfile(seed=SEED, torn_write_rate=1.0))
        with pytest.raises(RetryExhaustedError):
            store.put("t/obj", b"E" * 1000)
        # Every attempt billed one request + the prefix that landed.
        assert store.stats.put_requests == store.retry.max_attempts
        assert 0 <= store.stats.bytes_uploaded < 1000 * store.retry.max_attempts

    def test_duplicate_delivery_bills_every_applied_attempt(self):
        store = make_store(FaultProfile(seed=SEED, duplicate_delivery_rate=1.0))
        with pytest.raises(RetryExhaustedError):
            store.put("t/obj", b"F" * 100)  # applied every time, response always lost
        attempts = store.retry.max_attempts
        assert store.get("t/obj") == b"F" * 100
        assert store.stats.put_requests == attempts
        assert store.stats.bytes_uploaded == 100 * attempts

    def test_abort_is_free(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"G" * 50)
        before = store.stats.put_requests
        store.abort_multipart(uid)
        assert store.stats.put_requests == before

    def test_writer_crash_is_not_retried(self):
        store = make_store(FaultProfile(seed=SEED, crash_after_put_ops=0))
        with pytest.raises(WriterCrashError):
            store.put("t/obj", b"H")
        assert store.stats.put_retries == 0
        # Dead is dead: every later PUT-class op fails too.
        with pytest.raises(WriterCrashError):
            store.initiate_multipart("t/other")


class TestPutMany:
    def test_batch_commits_all(self):
        store = make_store()
        store.put_many({"t/a": b"1", "t/b": b"22", "t/c": b"333"})
        assert store.keys() == ["t/a", "t/b", "t/c"]
        assert store.get("t/c") == b"333"

    def test_mid_batch_failure_leaves_nothing_visible(self):
        # Regression: put_many used to be a naive loop, so a failure on the
        # Nth object left objects 1..N-1 committed. A 90% per-attempt fault
        # rate makes retry exhaustion a statistical certainty across 36
        # PUT-class requests, for any seed.
        store = make_store(FaultProfile(seed=SEED, put_transient_error_rate=0.9))
        files = {f"t/obj{i:02d}": bytes([i]) * 64 for i in range(12)}
        with pytest.raises(ObjectStoreError):
            store.put_many(files)
        assert store.keys("t/") == []
        assert store.staged_bytes("t/") == 0

    def test_failed_overwrite_batch_restores_previous_values(self):
        store = make_store()
        store.put_many({"t/a": b"old-a", "t/b": b"old-b"})
        store.set_faults(FaultProfile(seed=SEED, put_transient_error_rate=0.9))
        with pytest.raises(ObjectStoreError):
            store.put_many({"t/a": b"new-a", "t/b": b"new-b", "t/c": b"new-c"})
        store.set_faults(None)
        assert store.get("t/a") == b"old-a"
        assert store.get("t/b") == b"old-b"
        assert store.keys("t/") == ["t/a", "t/b"]

    def test_batch_is_all_or_nothing_under_faults(self):
        # At a moderate fault rate the batch usually commits through
        # retries; rarely (seed-dependent) retries exhaust. Both are legal —
        # what is never legal is a partially visible batch.
        store = make_store(
            FaultProfile(seed=SEED, put_transient_error_rate=0.1, torn_write_rate=0.1)
        )
        files = {f"t/obj{i:02d}": bytes([65 + i]) * 128 for i in range(8)}
        try:
            store.put_many(files)
        except ObjectStoreError:
            assert store.keys("t/") == []
            assert store.staged_bytes("t/") == 0
            return
        for key, data in files.items():
            assert store.get(key) == data


class TestBilling:
    def test_clean_put_bills_request_and_bytes(self):
        store = make_store()
        store.put("t/obj", b"I" * 500)
        assert store.stats.put_requests == 1
        assert store.stats.bytes_uploaded == 500

    def test_multipart_bills_initiate_parts_complete(self):
        store = make_store()
        uid = store.initiate_multipart("t/obj")
        store.upload_part(uid, 1, b"J" * 300)
        store.upload_part(uid, 2, b"K" * 200)
        store.complete_multipart(uid)
        # initiate + 2 parts + complete
        assert store.stats.put_requests == 4
        assert store.stats.bytes_uploaded == 500

    def test_write_cost_model_prices_requests_and_time(self):
        from repro.cloud import WriteCostModel

        store = make_store()
        store.put_many({"t/a": b"L" * 10_000})
        model = WriteCostModel(store.pricing)
        metrics = model.from_stats("t", store.stats)
        cost = model.cost_usd(metrics)
        expected_requests = store.pricing.put_cost(store.stats.put_requests)
        assert cost > expected_requests > 0
        assert metrics.wall_seconds > 0
