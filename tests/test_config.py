"""Tests for configuration handling."""

import pytest

from repro.core.config import BtrBlocksConfig
from repro.encodings.base import SchemeId


class TestDefaults:
    def test_paper_defaults(self):
        config = BtrBlocksConfig()
        assert config.block_size == 64_000
        assert config.max_cascade_depth == 3
        assert config.sample_runs == 10
        assert config.sample_run_length == 64
        assert config.sample_size() == 640
        assert config.rle_min_avg_run_length == 2.0
        assert config.frequency_max_unique_fraction == 0.5
        assert config.pseudodecimal_min_unique_fraction == 0.1
        assert config.pseudodecimal_max_exception_fraction == 0.5

    def test_sample_is_one_percent_of_block(self):
        config = BtrBlocksConfig()
        assert config.sample_size() / config.block_size == pytest.approx(0.01)

    def test_vectorized_by_default(self):
        assert BtrBlocksConfig().vectorized is True

    def test_fused_rle_dict_threshold(self):
        # Paper Section 5: fuse only when the average run length exceeds 3.
        assert BtrBlocksConfig().fused_rle_dict_min_run == 3.0


class TestWithPool:
    def test_returns_new_config(self):
        base = BtrBlocksConfig()
        restricted = base.with_pool({SchemeId.DICT_INT})
        assert restricted is not base
        assert base.allowed_schemes is None
        assert restricted.allowed_schemes == frozenset({SchemeId.DICT_INT})

    def test_preserves_other_fields(self):
        base = BtrBlocksConfig(block_size=1234, max_cascade_depth=2)
        restricted = base.with_pool([SchemeId.RLE_INT])
        assert restricted.block_size == 1234
        assert restricted.max_cascade_depth == 2
