"""Overload-hardening suite: deadlines, budgets, breaking, brownout chaos.

Four layers of the serving stack's graceful-degradation story:

1. :class:`~repro.cloud.retry.RetryBudget` and
   :class:`~repro.cloud.breaker.CircuitBreaker` unit behaviour on the
   simulated clock (token refill, state transitions, seeded jitter);
2. deadline propagation through the :class:`~repro.serve.server.ScanServer`:
   in-flight cancellation at stage boundaries frees the worker slot at the
   deadline instant, queued waiters whose deadline passes release their
   queue slot *in the timer callback* (the regression this file pins), and
   doomed work is shed at admission with a retry-after hint, billed zero;
3. the chaos oracle: under seeded brownout episodes with the full layer on,
   every request either completes bit-identical to a fault-free sequential
   scan or ends in a typed error — never a hang, never a partial result —
   and per-tenant ledgers still sum exactly to the store's accounting;
4. the brownout bench: with the layer on, retries and billed-but-wasted
   bytes drop against the unhardened server on the same seeded faults,
   while the fault-free control pair stays bit-identical (the layer costs
   nothing when the store is healthy).

The oracle/invariant tests honour ``REPRO_CHAOS_SEED`` (CI's chaos-matrix
job runs a randomized seed through them); the measurable-improvement
assertions pin the default seed, where the margins are verified.
"""

from __future__ import annotations

import os

import pytest

from repro.cloud.breaker import BreakerPolicy, CircuitBreaker
from repro.cloud.faults import FaultProfile, seeded_brownouts
from repro.cloud.objectstore import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable
from repro.cloud.retry import RetryBudget, RetryPolicy, SimulatedClock
from repro.exceptions import (
    AdmissionRejectedError,
    CircuitOpenError,
    DeadlineExceededError,
    RetryBudgetExhaustedError,
    RetryExhaustedError,
)
from repro.observe import MetricsRegistry, use_registry
from repro.serve import (
    EventLoop,
    ScanRequest,
    ScanServer,
    WorkloadSpec,
    build_catalog,
    generate_workload,
    run_brownout_bench,
    serve_workload,
    sleep,
)
from repro.types import columns_equal

SERVE_SEED = int(os.environ.get("REPRO_SERVE_SEED", "202408"), 0)
#: Deterministic default; CI's chaos-matrix job also runs a randomized seed
#: (echoed in its log) through the seed-agnostic invariant tests below.
CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "7"), 0)

AMPLE_RETRY = RetryPolicy(max_attempts=8)
FLOAT_TOL = 1e-9

#: Every way a request admitted under the overload layer may legally end
#: other than completing.
TYPED_FAILURES = (
    DeadlineExceededError,
    RetryBudgetExhaustedError,
    CircuitOpenError,
    RetryExhaustedError,
)


# -- retry budgets -------------------------------------------------------------


class TestRetryBudget:
    def test_starts_full_and_spends_to_empty(self):
        budget = RetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_spend(0.0) is True
        assert budget.try_spend(0.0) is True
        assert budget.try_spend(0.0) is False  # empty: no spend, no debt

    def test_refills_against_simulated_time(self):
        budget = RetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_spend(0.0) and budget.try_spend(0.0)
        assert budget.try_spend(0.5) is False  # half a token is not a token
        assert budget.try_spend(1.0) is True  # one second refilled one
        assert budget.try_spend(1.0) is False

    def test_refill_caps_at_capacity(self):
        budget = RetryBudget(capacity=2.0, refill_per_second=1.0)
        assert budget.try_spend(0.0)
        # An idle century refills to capacity, not beyond it.
        assert budget.try_spend(100.0) and budget.try_spend(100.0)
        assert budget.try_spend(100.0) is False


# -- circuit breaker -----------------------------------------------------------


def _breaker(**overrides) -> CircuitBreaker:
    policy = dict(
        failure_threshold=3,
        reset_timeout_seconds=1.0,
        half_open_probes=2,
        success_threshold=2,
        jitter=0.25,
        seed=CHAOS_SEED,
    )
    policy.update(overrides)
    return CircuitBreaker(BreakerPolicy(**policy))


def _trip(breaker: CircuitBreaker, clock: SimulatedClock) -> None:
    for _ in range(breaker.policy.failure_threshold):
        breaker.record_failure(clock)


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_and_fast_fails(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            clock = SimulatedClock()
            breaker = _breaker()
            breaker.record_failure(clock)
            breaker.record_failure(clock)
            assert breaker.state == "closed"  # one short of the threshold
            breaker.record_failure(clock)
            assert breaker.state == "open"
            with pytest.raises(CircuitOpenError) as caught:
                breaker.before_request(clock)
        # The fast-fail carries a usable hint: the jittered open interval.
        assert 1.0 <= caught.value.retry_after_seconds <= 1.25
        assert registry.get("cloud.breaker.opened") == 1
        assert registry.get("cloud.breaker.fast_fail") == 1

    def test_a_success_resets_the_failure_streak(self):
        with use_registry(MetricsRegistry()):
            clock = SimulatedClock()
            breaker = _breaker()
            breaker.record_failure(clock)
            breaker.record_failure(clock)
            breaker.record_success(clock)
            breaker.record_failure(clock)
            breaker.record_failure(clock)
            assert breaker.state == "closed"  # streak restarted at the success
            breaker.record_failure(clock)
            assert breaker.state == "open"

    def test_half_open_admits_bounded_probes_then_closes(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            clock = SimulatedClock()
            breaker = _breaker()
            _trip(breaker, clock)
            clock.advance(1.3)  # past any jittered interval (<= 1.25)
            breaker.before_request(clock)  # first probe admitted
            assert breaker.state == "half_open"
            breaker.before_request(clock)  # second probe admitted
            with pytest.raises(CircuitOpenError):
                breaker.before_request(clock)  # probe slots full
            breaker.record_success(clock)
            breaker.record_success(clock)
            assert breaker.state == "closed"
            breaker.before_request(clock)  # closed again: passes freely
        assert registry.get("cloud.breaker.half_open") == 1
        assert registry.get("cloud.breaker.probes") == 2
        assert registry.get("cloud.breaker.closed") == 1

    def test_a_probe_failure_reopens_for_a_fresh_interval(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            clock = SimulatedClock()
            breaker = _breaker()
            _trip(breaker, clock)
            clock.advance(1.3)
            breaker.before_request(clock)  # probe out
            breaker.record_failure(clock)
            assert breaker.state == "open"
            with pytest.raises(CircuitOpenError) as caught:
                breaker.before_request(clock)
        assert registry.get("cloud.breaker.reopened") == 1
        assert 1.0 <= caught.value.retry_after_seconds <= 1.25

    def test_a_cancelled_probe_releases_its_slot(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            clock = SimulatedClock()
            breaker = _breaker()
            _trip(breaker, clock)
            clock.advance(1.3)
            breaker.before_request(clock)  # both probe slots out
            breaker.before_request(clock)
            breaker.record_cancelled(clock)  # both die client-side (deadline)
            breaker.record_cancelled(clock)
            assert breaker.state == "half_open"
            # Slots were released, not leaked: probing resumes and the
            # circuit can still close once the store answers.
            breaker.before_request(clock)
            breaker.record_success(clock)
            breaker.before_request(clock)
            breaker.record_success(clock)
            assert breaker.state == "closed"
        assert registry.get("cloud.breaker.probe_cancelled") == 2

    def test_a_cancellation_is_not_a_success_for_the_failure_streak(self):
        with use_registry(MetricsRegistry()):
            clock = SimulatedClock()
            breaker = _breaker()
            breaker.record_failure(clock)
            breaker.record_failure(clock)
            breaker.record_cancelled(clock)  # says nothing about the store
            breaker.record_failure(clock)
            assert breaker.state == "open"  # streak survived the cancellation

    def test_deadline_cancelled_probe_does_not_wedge_the_store_breaker(self):
        # Regression: a half-open probe GET whose backoff crossed the
        # client's deadline raised DeadlineExceededError past the breaker
        # bookkeeping, leaking its probe slot; after half_open_probes such
        # leaks every request fast-failed with CircuitOpenError forever,
        # even after the store healed.
        with use_registry(MetricsRegistry()):
            store = SimulatedObjectStore(breaker=_breaker(seed=CHAOS_SEED))
            payload = b"\x5a" * 64
            store.put("obj", payload)
            store.set_faults(
                FaultProfile(transient_error_rate=1.0, seed=CHAOS_SEED)
            )
            for _ in range(store.breaker.policy.failure_threshold):
                with pytest.raises(RetryExhaustedError):
                    store.get("obj")
            assert store.breaker.state == "open"
            store.clock.advance(1.3)  # past any jittered open interval
            for _ in range(store.breaker.policy.half_open_probes):
                # A deadline at "now" makes the first backoff cross it.
                store.deadline_seconds = store.clock.now_seconds
                with pytest.raises(DeadlineExceededError):
                    store.get("obj")
            assert store.breaker.state == "half_open"
            # The store heals; the breaker must still have probe slots.
            store.deadline_seconds = None
            store.set_faults(None)
            assert store.get("obj") == payload
            assert store.get("obj") == payload
            assert store.breaker.state == "closed"

    def test_open_interval_jitter_is_seeded_deterministic(self):
        def open_interval(seed):
            with use_registry(MetricsRegistry()):
                clock = SimulatedClock()
                breaker = _breaker(seed=seed)
                _trip(breaker, clock)
                with pytest.raises(CircuitOpenError) as caught:
                    breaker.before_request(clock)
            return caught.value.retry_after_seconds

        assert open_interval(CHAOS_SEED) == open_interval(CHAOS_SEED)


# -- deadline propagation through the server -----------------------------------


def _overload_setup(tables=1, rows=800, **server_kwargs):
    registry = MetricsRegistry()
    with use_registry(registry):
        store = SimulatedObjectStore()
        profiles = build_catalog(store, tables=tables, rows=rows, seed=SERVE_SEED)
        store.stats.reset()  # serving-only deltas; catalog writes don't count
        loop = EventLoop(clock=store.clock)
        store.clock.reset()
        server = ScanServer(store, loop, **server_kwargs)
    return registry, store, profiles, loop, server


class TestDeadlinePropagation:
    def test_inflight_deadline_cancels_bills_waste_and_frees_the_slot(self):
        registry, store, profiles, loop, server = _overload_setup(
            max_concurrency=1, queue_limit=4
        )
        profile = profiles[0]
        errors, responses = [], []

        async def tight():
            try:
                await server.submit(
                    ScanRequest(
                        tenant="tight",
                        table=profile.name,
                        columns=profile.columns,
                        deadline_seconds=1e-4,  # unmeetable: one GET is slower
                    )
                )
            except DeadlineExceededError as error:
                errors.append(error)

        async def patient():
            responses.append(
                await server.submit(
                    ScanRequest(
                        tenant="patient", table=profile.name, columns=profile.columns
                    )
                )
            )

        with use_registry(registry):
            loop.create_task(tight(), "tight")
            loop.create_task(patient(), "patient")
            loop.run()

        assert len(errors) == 1, "the unmeetable deadline was not enforced"
        tight_ledger = server.ledgers["tight"]
        assert tight_ledger.failed == 1
        assert tight_ledger.deadline_exceeded == 1
        # Whatever the doomed request moved before cancelling is billed to
        # it — and all of it counts as waste (nothing was served).
        assert tight_ledger.wasted_bytes == tight_ledger.bytes_fetched
        assert registry.get("server.deadline.exceeded") == 1
        # The slot was freed by the cancellation: the queued request ran.
        assert len(responses) == 1
        # Exactness survives the cancellation point: ledgers still sum to
        # the store's accounting.
        ledgers = server.ledgers.values()
        assert sum(l.bytes_fetched for l in ledgers) == store.stats.bytes_downloaded
        assert sum(l.get_requests for l in ledgers) == store.stats.get_requests

    def test_slot_is_released_at_the_deadline_instant_not_stage_end(self):
        registry, store, profiles, loop, server = _overload_setup(
            max_concurrency=1, queue_limit=4
        )
        profile = profiles[0]
        deadline = 0.02
        finished_at = []

        async def tight():
            try:
                await server.submit(
                    ScanRequest(
                        tenant="tight",
                        table=profile.name,
                        columns=profile.columns,
                        deadline_seconds=deadline,
                    )
                )
            except DeadlineExceededError:
                finished_at.append(loop.now_seconds)

        with use_registry(registry):
            loop.create_task(tight(), "tight")
            loop.run()

        assert finished_at, "the scan beat a deadline it cannot meet"
        # The cancellable stage sleep wakes exactly at the deadline — the
        # request never occupies its slot into a stage whose result is
        # already unusable.
        assert finished_at[0] == pytest.approx(deadline, abs=FLOAT_TOL)


class TestQueuedWaiterExpiry:
    def test_expiry_releases_the_queue_slot_immediately(self):
        # The regression: max_concurrency=1 and queue_limit=1, so the queue
        # is full the moment one request waits. Its deadline expires while
        # the slot is still busy; the timer callback must release the queue
        # slot *at the expiry instant* — a later arrival queues instead of
        # bouncing off a corpse still counted against the bound.
        registry, store, profiles, loop, server = _overload_setup(
            max_concurrency=1, queue_limit=1
        )
        profile = profiles[0]
        outcomes = {}

        async def occupant():
            outcomes["occupant"] = await server.submit(
                ScanRequest(
                    tenant="occupant", table=profile.name, columns=profile.columns
                )
            )

        async def expiring():
            try:
                await server.submit(
                    ScanRequest(
                        tenant="expiring",
                        table=profile.name,
                        columns=profile.columns,
                        # Above the cold-server projected wait (0.05s), so
                        # it queues rather than being shed — and below the
                        # occupant's ~0.15s scan, so it expires in the queue.
                        deadline_seconds=0.06,
                    )
                )
            except DeadlineExceededError as error:
                outcomes["expiring"] = error

        async def latecomer():
            await sleep(0.08)  # arrives after the expiry, before the slot frees
            try:
                outcomes["latecomer"] = await server.submit(
                    ScanRequest(
                        tenant="latecomer", table=profile.name, columns=("code",)
                    )
                )
            except AdmissionRejectedError as error:  # pragma: no cover - the bug
                outcomes["latecomer"] = error

        with use_registry(registry):
            loop.create_task(occupant(), "occupant")
            loop.create_task(expiring(), "expiring")
            loop.create_task(latecomer(), "latecomer")
            loop.run()

        # Self-check: the occupant really was still running when the
        # latecomer arrived, so the queue slot it needed was the expired
        # waiter's, not a naturally free one.
        assert outcomes["occupant"].finished_seconds > 0.08
        assert isinstance(outcomes["expiring"], DeadlineExceededError)
        assert not isinstance(outcomes["latecomer"], AdmissionRejectedError), (
            "expired waiter still held its queue slot"
        )
        expired = server.ledgers["expiring"]
        assert expired.failed == 1
        assert expired.deadline_exceeded == 1
        # Billed exactly zero: it never started.
        assert (expired.get_requests, expired.bytes_fetched, expired.cost_usd) == (
            0,
            0,
            0.0,
        )
        assert registry.get("server.deadline.queue_expired") == 1
        assert server.queue_peak <= server.queue_limit


class TestDoomedWorkShedding:
    def test_unmeetable_deadline_is_shed_at_admission_billed_zero(self):
        registry, store, profiles, loop, server = _overload_setup(
            max_concurrency=1, queue_limit=8
        )
        profile = profiles[0]

        async def warm():
            # One completed scan gives the server a real mean service time
            # (a cold server sheds nothing by design).
            await server.submit(
                ScanRequest(tenant="warm", table=profile.name, columns=profile.columns)
            )

        with use_registry(registry):
            loop.create_task(warm(), "warm")
            loop.run()

        shed_errors = []

        async def occupant():
            await server.submit(
                ScanRequest(
                    tenant="occupant", table=profile.name, columns=profile.columns
                )
            )

        async def doomed():
            try:
                await server.submit(
                    ScanRequest(
                        tenant="doomed",
                        table=profile.name,
                        columns=profile.columns,
                        deadline_seconds=1e-4,  # << projected queue wait
                    )
                )
            except AdmissionRejectedError as error:
                shed_errors.append(error)

        with use_registry(registry):
            loop.create_task(occupant(), "occupant")
            loop.create_task(doomed(), "doomed")
            loop.run()

        assert len(shed_errors) == 1, "doomed work was not shed"
        error = shed_errors[0]
        assert error.reason == "doomed"
        assert error.retry_after_seconds > 0  # the projected wait, as a hint
        ledger = server.ledgers["doomed"]
        assert ledger.shed == 1
        assert ledger.rejected == 0  # shed is its own outcome, not queue_full
        assert (ledger.get_requests, ledger.bytes_fetched, ledger.cost_usd) == (
            0,
            0,
            0.0,
        )
        assert registry.get("server.deadline.shed") == 1


# -- the chaos oracle ----------------------------------------------------------


def _chaos_run(tenants=8, requests_per_tenant=4):
    """One hardened workload under seeded brownouts; returns its whole world."""
    registry = MetricsRegistry()
    with use_registry(registry):
        store = SimulatedObjectStore()
        profiles = build_catalog(store, tables=2, rows=1000, seed=SERVE_SEED)
        store.retry = AMPLE_RETRY
        spec = WorkloadSpec(
            tenants=tenants, requests_per_tenant=requests_per_tenant, seed=SERVE_SEED
        )
        horizon = max(t.arrival_seconds for t in generate_workload(spec, profiles)) + 1.0
        store.set_faults(
            FaultProfile(seed=CHAOS_SEED, episodes=seeded_brownouts(CHAOS_SEED, horizon))
        )
        store.stats.reset()
        run = serve_workload(
            store,
            profiles,
            spec,
            catch_errors=True,
            max_concurrency=3,
            queue_limit=8,
            default_deadline_seconds=0.75,
            retry_budget_tokens=4.0,
            breaker=CircuitBreaker(BreakerPolicy(seed=CHAOS_SEED)),
        )
    return registry, store, run, spec


class TestChaosOracle:
    def test_every_request_completes_or_ends_in_a_typed_error(self):
        registry, store, run, spec = _chaos_run()
        total = spec.tenants * spec.requests_per_tenant
        # Conservation: completed + rejected + typed failures == submitted.
        # Nothing hangs, nothing vanishes.
        assert len(run["responses"]) + len(run["rejected"]) + len(run["failures"]) == total
        for _request, error in run["failures"]:
            assert isinstance(error, TYPED_FAILURES), error
        for _request, error in run["rejections"]:
            assert isinstance(error, AdmissionRejectedError)
            assert error.reason in ("queue_full", "doomed")
        # The chaos actually bit: the brownout injected degradation and the
        # layer had something to do (seeded_brownouts guarantees the first
        # episode covers the arrival burst, for any seed).
        assert registry.get("cloud.faults.brownout_requests") > 0
        assert len(run["responses"]) < total, "brownout stopped nothing"

    def test_completed_scans_are_bit_identical_to_fault_free_oracle(self):
        registry, store, run, _spec = _chaos_run()
        assert run["responses"], "chaos run served nothing"
        with use_registry(registry):
            # Replay sequentially with the chaos stripped: no faults, no
            # breaker, fresh handles. Served bytes must match exactly.
            store.set_faults(None)
            store.breaker = None
            tables = {}
            for response in run["responses"]:
                request = response.request
                key = (request.table, request.on_corrupt)
                table = tables.get(key)
                if table is None:
                    table = tables[key] = RemoteTable.open(
                        store, request.table, on_corrupt=request.on_corrupt
                    )
                columns = (
                    list(request.columns) if request.columns is not None else None
                )
                expected = table.scan(columns, where=request.where)
                got = response.relation
                assert got.column_names() == expected.column_names(), request
                for name in expected.column_names():
                    assert columns_equal(got.column(name), expected.column(name)), (
                        request,
                        name,
                    )

    def test_ledgers_sum_exactly_at_every_cancellation_point(self):
        _registry, store, run, _spec = _chaos_run()
        server = run["server"]
        ledgers = server.ledgers.values()
        stats = store.stats
        assert sum(l.get_requests for l in ledgers) == stats.get_requests
        assert sum(l.bytes_fetched for l in ledgers) == stats.bytes_downloaded
        assert sum(l.retries for l in ledgers) == stats.retries
        assert sum(l.backoff_seconds for l in ledgers) == pytest.approx(
            stats.backoff_seconds, abs=FLOAT_TOL
        )
        assert sum(l.brownout_seconds for l in ledgers) == pytest.approx(
            stats.brownout_seconds, abs=FLOAT_TOL
        )
        # Waste is real but bounded by what was billed.
        wasted = sum(l.wasted_bytes for l in ledgers)
        assert 0 <= wasted <= sum(l.bytes_fetched for l in ledgers)

    def test_chaos_run_replays_bit_identically(self):
        def signature():
            _registry, _store, run, _spec = _chaos_run()
            return (
                [
                    (
                        r.request.tenant,
                        r.arrived_seconds,
                        r.finished_seconds,
                        r.bytes_fetched,
                        r.cost_usd,
                    )
                    for r in run["responses"]
                ],
                [(request.tenant, type(error).__name__) for request, error in run["failures"]],
                [(request.tenant, error.reason) for request, error in run["rejections"]],
            )

        assert signature() == signature()


# -- the brownout bench --------------------------------------------------------


@pytest.fixture(scope="module")
def brownout_report():
    """One four-mode sweep at the verified default seed, shared module-wide."""
    with use_registry(MetricsRegistry()):
        return run_brownout_bench(chaos_seed=7)


class TestBrownoutBench:
    def test_layer_measurably_cuts_retries_and_wasted_bytes(self, brownout_report):
        hardened = brownout_report["brownout"]["hardened"]
        unhardened = brownout_report["brownout"]["unhardened"]
        # The acceptance numbers: on the same seeded brownout, the layer
        # wastes measurably fewer billed bytes and never retries more.
        assert brownout_report["wasted_bytes_saved"] > 0
        assert brownout_report["retries_saved"] >= 0
        assert hardened["goodput_per_second"] > unhardened["goodput_per_second"]
        assert hardened["p99_latency_seconds"] <= unhardened["p99_latency_seconds"]
        # The layer visibly engaged: typed outcomes, not silent drops.
        engaged = (
            hardened["shed"]
            + hardened["deadline_exceeded"]
            + hardened["retry_budget_exhausted"]
            + hardened["circuit_open"]
        )
        assert engaged > 0

    def test_fault_free_control_pair_is_bit_identical(self, brownout_report):
        # With a healthy store the layer must cost nothing: the hardened
        # and unhardened runs produce the same metrics to the bit (p99
        # parity on the fault-free workload is the acceptance gate).
        assert brownout_report["fault_free"]["hardened"] == (
            brownout_report["fault_free"]["unhardened"]
        )

    def test_every_mode_conserves_requests(self, brownout_report):
        total = brownout_report["requests"]
        for pair in (brownout_report["brownout"], brownout_report["fault_free"]):
            for metrics in pair.values():
                accounted = (
                    metrics["completed"]
                    + metrics["rejected"]
                    + sum(metrics["failures"].values())
                )
                assert accounted == total, metrics

    def test_first_episode_covers_the_arrival_burst(self, brownout_report):
        episodes = brownout_report["episodes"]
        assert episodes, "chaos modes ran without brownout episodes"
        first = episodes[0]
        # seeded_brownouts' contract: episode 0 opens near t=0 (within 5%
        # of the horizon, against a duration of at least 45% of it) so the
        # workload's arrival burst meets degraded service on every seed.
        assert first["start_seconds"] <= 0.12 * first["duration_seconds"]
        assert first["transient_error_rate"] > 0
