"""Edge-case sweep across modules: boundaries the main suites don't hit."""

import numpy as np
import pytest

from repro.core.compressor import compress_block, compress_column
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_block, decompress_column
from repro.datagen.csvio import csv_to_relation, relation_to_csv
from repro.core.relation import Relation
from repro.types import Column, ColumnType, StringArray, columns_equal


class TestTinyBlocks:
    @pytest.mark.parametrize("n", [1, 2, 3, 127, 128, 129])
    def test_int_sizes_around_page_boundary(self, n, rng):
        values = rng.integers(-100, 100, n).astype(np.int32)
        blob = compress_block(values, ColumnType.INTEGER)
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)

    @pytest.mark.parametrize("n", [1, 2, 640, 641])
    def test_double_sizes_around_sample_boundary(self, n, rng):
        values = np.round(rng.uniform(0, 10, n), 1)
        blob = compress_block(values, ColumnType.DOUBLE)
        out = decompress_block(blob, ColumnType.DOUBLE)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_single_string(self):
        sa = StringArray.from_pylist(["lonely"])
        blob = compress_block(sa, ColumnType.STRING)
        assert decompress_block(blob, ColumnType.STRING) == sa


class TestExtremeValues:
    def test_int32_boundaries(self):
        values = np.array([-(2**31), 2**31 - 1] * 200, dtype=np.int32)
        blob = compress_block(values, ColumnType.INTEGER)
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)

    def test_denormal_doubles(self):
        values = np.array([5e-324, -5e-324, 2.2e-308] * 100)
        blob = compress_block(values, ColumnType.DOUBLE)
        out = decompress_block(blob, ColumnType.DOUBLE)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_distinct_nan_payloads(self):
        patterns = np.array([0x7FF8000000000001, 0x7FF8000000000002, 0xFFF8DEADBEEF0000],
                            dtype=np.uint64)
        values = np.tile(patterns, 50).view(np.float64)
        blob = compress_block(values, ColumnType.DOUBLE)
        out = decompress_block(blob, ColumnType.DOUBLE)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_very_long_strings(self):
        sa = StringArray.from_pylist(["x" * 100_000, "y" * 50_000, "x" * 100_000])
        blob = compress_block(sa, ColumnType.STRING)
        assert decompress_block(blob, ColumnType.STRING) == sa

    def test_all_empty_strings(self):
        sa = StringArray.from_pylist([""] * 1000)
        blob = compress_block(sa, ColumnType.STRING)
        assert decompress_block(blob, ColumnType.STRING) == sa


class TestBlockBoundaries:
    @pytest.mark.parametrize("rows", [999, 1000, 1001, 2000, 2001])
    def test_column_sizes_around_block_boundary(self, rows, rng, small_config):
        column = Column.ints("c", rng.integers(0, 10, rows))
        back = decompress_column(compress_column(column, small_config))
        assert columns_equal(back, column)

    def test_null_on_block_boundary(self, rng, small_config):
        from repro.bitmap import RoaringBitmap

        column = Column.ints("c", rng.integers(0, 10, 2000),
                             RoaringBitmap.from_positions([999, 1000]))
        back = decompress_column(compress_column(column, small_config))
        assert back.nulls.to_array().tolist() == [999, 1000]

    def test_all_rows_null(self, small_config):
        from repro.bitmap import RoaringBitmap

        column = Column.doubles("c", np.zeros(1500),
                                RoaringBitmap.from_positions(np.arange(1500)))
        back = decompress_column(compress_column(column, small_config))
        assert columns_equal(back, column)


class TestCSVEdgeCases:
    def test_strings_with_commas_and_quotes(self):
        rel = Relation("t", [Column.strings("s", ['a,b', 'say "hi"', 'line1\nline2'])])
        back = csv_to_relation(relation_to_csv(rel), "t")
        assert back.column("s").data.to_pylist() == [b'a,b', b'say "hi"', b'line1\nline2']

    def test_unicode_round_trip(self):
        rel = Relation("t", [Column.strings("s", ["Maceió", "日本", "ß"])])
        back = csv_to_relation(relation_to_csv(rel), "t")
        assert back.column("s").data.to_pylist() == ["Maceió".encode(), "日本".encode(), "ß".encode()]

    def test_negative_and_zero_numbers(self):
        text = "a,b\n-5,-1.5\n0,0.0\n"
        rel = csv_to_relation(text)
        assert rel.column("a").data.tolist() == [-5, 0]
        assert rel.column("b").data.tolist() == [-1.5, 0.0]

    def test_scientific_notation_is_double(self):
        rel = csv_to_relation("x\n1e-3\n2.5e10\n")
        assert rel.column("x").ctype is ColumnType.DOUBLE

    def test_all_empty_column_is_string(self):
        rel = csv_to_relation("x\n\n\n")
        assert rel.column("x").ctype is ColumnType.STRING
        assert len(rel.column("x").nulls) == 2


class TestConfigEdgeCases:
    def test_block_size_one(self, rng):
        config = BtrBlocksConfig(block_size=1)
        column = Column.ints("c", rng.integers(0, 5, 10))
        compressed = compress_column(column, config)
        assert len(compressed.blocks) == 10
        assert columns_equal(decompress_column(compressed), column)

    def test_huge_block_size(self, rng):
        config = BtrBlocksConfig(block_size=10**9)
        column = Column.ints("c", rng.integers(0, 5, 1000))
        compressed = compress_column(column, config)
        assert len(compressed.blocks) == 1

    def test_zero_sample_runs_still_works(self, rng):
        # Degenerate sampling config: the strategy falls back to whole-block.
        config = BtrBlocksConfig(sample_runs=1, sample_run_length=1)
        values = rng.integers(0, 5, 5000).astype(np.int32)
        blob = compress_block(values, ColumnType.INTEGER, config)
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)


class TestEmptyColumns:
    """Empty columns must round-trip with their logical dtype intact."""

    @pytest.mark.parametrize(
        "column, dtype",
        [
            (Column.ints("e", np.array([], dtype=np.int64)), np.int32),
            (Column.doubles("e", np.array([], dtype=np.float64)), np.float64),
        ],
    )
    def test_empty_numeric_round_trip_preserves_dtype(self, column, dtype):
        back = decompress_column(compress_column(column))
        assert len(back) == 0
        assert back.ctype is column.ctype
        assert np.asarray(back.data).dtype == dtype

    def test_empty_string_round_trip(self):
        column = Column.strings("e", [])
        back = decompress_column(compress_column(column))
        assert len(back) == 0
        assert isinstance(back.data, StringArray)

    @pytest.mark.parametrize(
        "ctype, dtype",
        [(ColumnType.INTEGER, np.int32), (ColumnType.DOUBLE, np.float64)],
    )
    def test_zero_block_column_assembles_with_dtype(self, ctype, dtype):
        # A CompressedColumn with no blocks at all (e.g. fully pruned) must
        # not decay to NumPy's default float64.
        from repro.core.blocks import CompressedColumn
        from repro.core.decompressor import assemble_column

        back = assemble_column(CompressedColumn("e", ctype), [])
        assert len(back) == 0
        assert np.asarray(back.data).dtype == dtype
