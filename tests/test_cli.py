"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.relation import Relation
from repro.datagen.csvio import csv_to_relation, relation_to_csv
from repro.types import Column


@pytest.fixture
def csv_file(tmp_path, rng):
    relation = Relation("sales", [
        Column.ints("id", rng.integers(0, 50, 500)),
        Column.doubles("price", np.round(rng.uniform(0, 10, 500), 2)),
        Column.strings("city", [["OSLO", "PARIS"][i % 2] for i in range(500)]),
    ])
    path = tmp_path / "sales.csv"
    path.write_text(relation_to_csv(relation), encoding="utf-8")
    return path, relation


class TestCompressDecompress:
    def test_round_trip(self, tmp_path, csv_file, capsys):
        csv_path, relation = csv_file
        btr_path = tmp_path / "sales.btr"
        out_path = tmp_path / "restored.csv"

        assert main(["compress", str(csv_path), str(btr_path)]) == 0
        assert btr_path.exists()
        output = capsys.readouterr().out
        assert "500 rows" in output

        assert main(["decompress", str(btr_path), str(out_path)]) == 0
        restored = csv_to_relation(out_path.read_text(), "sales")
        assert restored.row_count == relation.row_count
        assert restored.column_names() == relation.column_names()
        assert np.array_equal(
            np.asarray(restored.column("price").data),
            np.asarray(relation.column("price").data),
        )

    def test_custom_block_size(self, tmp_path, csv_file, capsys):
        csv_path, _ = csv_file
        btr_path = tmp_path / "x.btr"
        assert main(["compress", str(csv_path), str(btr_path), "--block-size", "100"]) == 0

    def test_inspect(self, tmp_path, csv_file, capsys):
        csv_path, _ = csv_file
        btr_path = tmp_path / "x.btr"
        main(["compress", str(csv_path), str(btr_path)])
        capsys.readouterr()
        assert main(["inspect", str(btr_path)]) == 0
        output = capsys.readouterr().out
        assert "price" in output
        assert "city" in output
        assert "dictionary" in output or "one_value" in output


class TestScan:
    @pytest.fixture
    def btr_file(self, tmp_path, csv_file):
        csv_path, relation = csv_file
        btr_path = tmp_path / "sales.btr"
        main(["compress", str(csv_path), str(btr_path)])
        return btr_path, relation

    def test_fault_free_scan(self, btr_file, capsys):
        btr_path, relation = btr_file
        capsys.readouterr()
        assert main(["scan", str(btr_path)]) == 0
        output = capsys.readouterr().out
        assert f"scanned {relation.row_count} rows x 3 columns" in output
        assert "retries 0" in output
        assert "faults injected" not in output

    def test_faulty_scan_retries_and_reports(self, tmp_path, btr_file, capsys):
        btr_path, _ = btr_file
        report_path = tmp_path / "scan.json"
        capsys.readouterr()
        assert main([
            "scan", str(btr_path), "--columns", "price,city",
            "--fault-transient", "0.5", "--seed", "0",
            "-o", str(report_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "2 columns" in output
        assert "faults injected: transient=" in output
        import json

        report = json.loads(report_path.read_text())
        assert report["reliability"]["retries"]["attempts"] > 0

    def test_corrupting_scan_degrades_when_asked(self, btr_file, capsys):
        btr_path, relation = btr_file
        capsys.readouterr()
        assert main([
            "scan", str(btr_path), "--fault-corrupt", "0.6", "--seed", "0",
            "--on-corrupt", "null_block",
        ]) == 0
        output = capsys.readouterr().out
        assert f"scanned {relation.row_count} rows" in output
        assert "integrity:" in output


class TestServeBenchGuards:
    def test_malformed_chaos_seed_env_fails_only_its_consumer(
        self, monkeypatch, tmp_path, csv_file, capsys
    ):
        # Regression: the seed envs used to be parsed in argparse defaults
        # at parser *build* time, so a malformed value crashed every
        # subcommand with a ValueError traceback.
        monkeypatch.setenv("REPRO_CHAOS_SEED", "seven")
        csv_path, _ = csv_file
        assert main(["compress", str(csv_path), str(tmp_path / "x.btr")]) == 0
        with pytest.raises(SystemExit) as caught:
            main(["serve-bench", "--brownout"])
        assert "REPRO_CHAOS_SEED" in str(caught.value)

    def test_blank_seed_envs_fall_back_to_defaults(self, monkeypatch):
        from repro.cli import _int_from_env

        monkeypatch.setenv("REPRO_SERVE_SEED", "")
        monkeypatch.setenv("REPRO_CHAOS_SEED", " ")
        assert _int_from_env("REPRO_SERVE_SEED", 202408) == 202408
        assert _int_from_env("REPRO_CHAOS_SEED", 7) == 7
        monkeypatch.setenv("REPRO_CHAOS_SEED", "0x10")
        assert _int_from_env("REPRO_CHAOS_SEED", 7) == 16

    def test_zero_deadline_is_rejected_not_silently_dropped(self):
        # Regression: `if args.deadline_ms` treated 0 as "no deadline".
        with pytest.raises(SystemExit) as caught:
            main(["serve-bench", "--deadline-ms", "0"])
        assert "--deadline-ms" in str(caught.value)

    def test_brownout_queue_limit_clamp_is_announced(self, monkeypatch, capsys):
        # Regression: --queue-limit above the brownout cap was silently
        # clamped. (The malformed chaos seed stops the run right after the
        # clamp note, keeping this test cheap.)
        monkeypatch.setenv("REPRO_CHAOS_SEED", "nope")
        with pytest.raises(SystemExit):
            main(["serve-bench", "--brownout", "--queue-limit", "64"])
        err = capsys.readouterr().err
        assert "caps --queue-limit at 32" in err
        assert "requested 64" in err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["explode"])

    def test_module_entry_point(self, tmp_path, csv_file):
        import subprocess
        import sys

        csv_path, _ = csv_file
        result = subprocess.run(
            [sys.executable, "-m", "repro", "compress", str(csv_path), str(tmp_path / "m.btr")],
            capture_output=True, text=True, timeout=120,
        )
        assert result.returncode == 0, result.stderr
