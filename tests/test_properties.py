"""Cross-cutting property-based tests over the full compression pipeline.

These drive random typed columns (including NULLs, special floats and binary
strings) through the end-to-end BtrBlocks pipeline and the baseline formats
and assert bitwise-lossless round trips — the paper's core correctness
requirement (Section 4.1).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_column, compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_column, decompress_relation
from repro.core.relation import Relation
from repro.types import Column, columns_equal


int_columns = st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=400)

double_columns = st.lists(
    st.one_of(
        st.floats(allow_nan=True, allow_infinity=True, width=64),
        st.decimals(min_value=-10**5, max_value=10**5, places=2).map(float),
        st.sampled_from([0.0, -0.0, 0.99, 3.25, 5.5e-42]),
    ),
    min_size=1,
    max_size=400,
)

string_columns = st.lists(
    st.one_of(
        st.binary(max_size=24),
        st.sampled_from([b"", b"shipped", b"pending", b"\xff\xff", b"PHOENIX"]),
    ),
    min_size=1,
    max_size=300,
)


def _null_bitmap(draw_positions, length):
    positions = [p for p in draw_positions if p < length]
    return RoaringBitmap.from_positions(positions) if positions else None


@settings(max_examples=50, deadline=None)
@given(int_columns, st.lists(st.integers(0, 399), max_size=20))
def test_int_column_round_trip(values, null_positions):
    column = Column.ints("c", np.array(values, dtype=np.int32),
                         _null_bitmap(null_positions, len(values)))
    back = decompress_column(compress_column(column))
    assert columns_equal(back, column)


@settings(max_examples=50, deadline=None)
@given(double_columns, st.lists(st.integers(0, 399), max_size=20))
def test_double_column_round_trip(values, null_positions):
    column = Column.doubles("c", np.array(values, dtype=np.float64),
                            _null_bitmap(null_positions, len(values)))
    back = decompress_column(compress_column(column))
    assert columns_equal(back, column)


@settings(max_examples=50, deadline=None)
@given(string_columns, st.lists(st.integers(0, 299), max_size=20))
def test_string_column_round_trip(values, null_positions):
    column = Column.strings("c", values)
    column.nulls = _null_bitmap(null_positions, len(values))
    back = decompress_column(compress_column(column))
    assert columns_equal(back, column)


@settings(max_examples=25, deadline=None)
@given(int_columns, st.integers(1, 4))
def test_depth_never_affects_correctness(values, depth):
    config = BtrBlocksConfig(max_cascade_depth=depth)
    column = Column.ints("c", np.array(values, dtype=np.int32))
    back = decompress_column(compress_column(column, config))
    assert columns_equal(back, column)


@settings(max_examples=20, deadline=None)
@given(int_columns)
def test_scalar_vectorized_equivalence(values):
    column = Column.ints("c", np.array(values, dtype=np.int32))
    compressed = compress_column(column)
    fast = decompress_column(compressed, vectorized=True)
    slow = decompress_column(compressed, vectorized=False)
    assert columns_equal(fast, slow)


@settings(max_examples=20, deadline=None)
@given(int_columns, double_columns)
def test_relation_round_trip(ints, doubles):
    n = min(len(ints), len(doubles))
    relation = Relation("t", [
        Column.ints("i", np.array(ints[:n], dtype=np.int32)),
        Column.doubles("d", np.array(doubles[:n], dtype=np.float64)),
    ])
    back = decompress_relation(compress_relation(relation))
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(string_columns)
def test_parquet_like_string_round_trip(values):
    from repro.baselines.parquet_like import ParquetLikeFormat

    relation = Relation("t", [Column.strings("s", values)])
    fmt = ParquetLikeFormat("snappy")
    back = fmt.decompress_relation(fmt.compress_relation(relation))
    assert columns_equal(back.columns[0], relation.columns[0])


@settings(max_examples=25, deadline=None)
@given(int_columns)
def test_orc_like_int_round_trip(values):
    from repro.baselines.orc_like import OrcLikeFormat

    relation = Relation("t", [Column.ints("i", np.array(values, dtype=np.int32))])
    fmt = OrcLikeFormat("zstd")
    back = fmt.decompress_relation(fmt.compress_relation(relation))
    assert columns_equal(back.columns[0], relation.columns[0])


@settings(max_examples=25, deadline=None)
@given(int_columns)
def test_file_format_round_trip(values):
    from repro.core.file_format import relation_from_bytes, relation_to_bytes

    relation = Relation("t", [Column.ints("i", np.array(values, dtype=np.int32))])
    compressed = compress_relation(relation)
    restored = relation_from_bytes(relation_to_bytes(compressed))
    back = decompress_relation(restored)
    assert columns_equal(back.columns[0], relation.columns[0])
