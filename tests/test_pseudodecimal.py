"""Tests for Pseudodecimal Encoding (paper Section 4)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BtrBlocksConfig
from repro.core.stats import compute_stats
from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.pseudodecimal import (
    EXPONENT_EXCEPTION,
    FRAC10,
    encode_block,
    exception_fraction,
)
from repro.types import ColumnType

from conftest import scheme_round_trip

PDE = get_scheme(SchemeId.PSEUDODECIMAL)
CONFIG = BtrBlocksConfig()


class TestEncodeBlock:
    def test_paper_example_3_25(self):
        digits, exponents, patches = encode_block(np.array([3.25]))
        assert digits[0] == 325
        assert exponents[0] == 2
        assert not patches[0]

    def test_paper_example_0_99(self):
        # The double nearest 0.99 must encode as (99, 2), not the full
        # 17-digit expansion (Section 4.1).
        digits, exponents, patches = encode_block(np.array([0.99]))
        assert digits[0] == 99
        assert exponents[0] == 2

    def test_integers_use_exponent_zero(self):
        digits, exponents, _ = encode_block(np.array([42.0, -7.0]))
        assert digits.tolist() == [42, -7]
        assert exponents.tolist() == [0, 0]

    def test_negative_sign_in_digits(self):
        digits, exponents, _ = encode_block(np.array([-6.425]))
        assert digits[0] == -6425
        assert exponents[0] == 3

    def test_negative_zero_is_exception(self):
        digits, exponents, patches = encode_block(np.array([-0.0]))
        assert patches[0]
        assert exponents[0] == EXPONENT_EXCEPTION

    def test_positive_zero_encodes(self):
        digits, exponents, patches = encode_block(np.array([0.0]))
        assert not patches[0]
        assert digits[0] == 0

    def test_nan_and_inf_are_exceptions(self):
        _, _, patches = encode_block(np.array([np.nan, np.inf, -np.inf]))
        assert patches.all()

    def test_tiny_subnormal_is_exception(self):
        # 5.5e-42 from the paper cannot be expressed with 22 exponents.
        _, _, patches = encode_block(np.array([5.5e-42]))
        assert patches[0]

    def test_digits_overflow_is_exception(self):
        # More than 31 bits of significant digits must be patched.
        _, _, patches = encode_block(np.array([12345678901.0]))
        assert patches[0]

    def test_high_precision_is_exception(self):
        _, _, patches = encode_block(np.array([0.1234567890123456789]))
        assert patches[0]

    def test_smallest_exponent_wins(self):
        digits, exponents, _ = encode_block(np.array([2.5]))
        assert (digits[0], exponents[0]) == (25, 1)


class TestExceptionFraction:
    def test_clean_data(self):
        values = np.round(np.linspace(0, 100, 1000), 2)
        assert exception_fraction(values) == 0.0

    def test_dirty_data(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000)
        assert exception_fraction(values) > 0.9

    def test_empty(self):
        assert exception_fraction(np.empty(0)) == 0.0


class TestViability:
    def test_low_unique_fraction_excluded(self):
        # Few unique values: dictionaries compress as well and decode faster.
        values = np.tile(np.round(np.arange(10) * 1.5, 1), 100)
        stats = compute_stats(values, ColumnType.DOUBLE)
        PDE.prepare_stats(values, stats, CONFIG)
        assert not PDE.is_viable(stats, CONFIG)

    def test_many_exceptions_excluded(self):
        rng = np.random.default_rng(0)
        values = rng.standard_normal(1000)
        stats = compute_stats(values, ColumnType.DOUBLE)
        PDE.prepare_stats(values, stats, CONFIG)
        assert not PDE.is_viable(stats, CONFIG)

    def test_clean_unique_decimals_viable(self):
        rng = np.random.default_rng(0)
        values = np.round(rng.uniform(0, 1000, 1000), 2)
        stats = compute_stats(values, ColumnType.DOUBLE)
        PDE.prepare_stats(values, stats, CONFIG)
        assert PDE.is_viable(stats, CONFIG)


class TestRoundTrip:
    def test_prices(self, price_doubles):
        payload, out = scheme_round_trip(PDE, price_doubles)
        assert np.array_equal(out.view(np.uint64), price_doubles.view(np.uint64))
        assert len(payload) < price_doubles.nbytes / 1.5

    def test_mixed_with_patches(self, rng):
        values = np.round(rng.uniform(0, 100, 1000), 2)
        values[::50] = np.nan
        values[1::50] = rng.standard_normal(20)
        _, out = scheme_round_trip(PDE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_scalar_matches_vectorized(self, rng):
        values = np.round(rng.uniform(-50, 50, 400), 1)
        values[5] = np.inf
        values[6] = -0.0
        _, fast = scheme_round_trip(PDE, values, vectorized=True)
        _, slow = scheme_round_trip(PDE, values, vectorized=False)
        assert np.array_equal(fast.view(np.uint64), slow.view(np.uint64))

    def test_all_exceptions_block(self, rng):
        values = rng.standard_normal(200)
        _, out = scheme_round_trip(PDE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_cascade_example_from_paper(self):
        values = np.array([0.99, 3.25, -6.425, 5.5e-42])
        digits, exponents, patches = encode_block(values)
        assert digits.tolist()[:3] == [99, 325, -6425]
        assert exponents.tolist()[:3] == [2, 2, 3]
        assert patches.tolist() == [False, False, False, True]


class TestFrac10Table:
    def test_has_23_entries(self):
        assert FRAC10.size == 23

    def test_matches_decimal_literals(self):
        assert FRAC10[0] == 1.0
        assert FRAC10[1] == 0.1
        assert FRAC10[2] == 0.01


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.one_of(
        st.floats(allow_nan=True, allow_infinity=True, width=64),
        st.decimals(min_value=-10**6, max_value=10**6, places=2).map(float),
    ),
    min_size=1, max_size=200,
))
def test_property_bitwise_lossless(values):
    arr = np.array(values, dtype=np.float64)
    _, out = scheme_round_trip(PDE, arr)
    assert np.array_equal(out.view(np.uint64), arr.view(np.uint64))
