"""Tests for the FSST string compression scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.fsst import (
    ESCAPE,
    MAX_SYMBOLS,
    SymbolTable,
    _escape_positions,
    decode_stream_scalar,
    decode_stream_vectorized,
    train_symbol_table,
)
from repro.exceptions import CorruptBlockError
from repro.types import StringArray

from conftest import scheme_round_trip

FSST = get_scheme(SchemeId.FSST)


class TestSymbolTable:
    def test_empty_table_escapes_everything(self):
        table = SymbolTable([])
        out = table.compress(b"ab")
        assert out == bytes([ESCAPE, ord("a"), ESCAPE, ord("b")])

    def test_longest_match_wins(self):
        table = SymbolTable([b"ab", b"abcd"])
        out = table.compress(b"abcdab")
        assert out == bytes([1, 0])

    def test_max_symbols_enforced(self):
        with pytest.raises(ValueError):
            SymbolTable([bytes([i]) for i in range(256)])

    def test_compress_decompress_identity(self):
        table = SymbolTable([b"http", b"://", b"www.", b".com"])
        data = b"http://www.example.com"
        stream = table.compress(data)
        symbols = StringArray.from_pylist(table.symbols)
        assert decode_stream_scalar(stream, symbols).tobytes() == data
        assert decode_stream_vectorized(stream, symbols).tobytes() == data


class TestTraining:
    def test_learns_repeated_substrings(self):
        data = b"https://example.com/page " * 500
        table = train_symbol_table(data)
        assert len(table.symbols) <= MAX_SYMBOLS
        compressed = table.compress(data)
        assert len(compressed) < len(data) / 3

    def test_handles_empty_input(self):
        table = train_symbol_table(b"")
        assert table.compress(b"") == b""

    def test_symbols_bounded_to_8_bytes(self):
        table = train_symbol_table(b"abcdefghijklmnop" * 300)
        assert all(1 <= len(s) <= 8 for s in table.symbols)


class TestEscapeResolution:
    def test_no_escapes(self):
        assert _escape_positions(np.array([1, 2, 3], dtype=np.uint8)).size == 0

    def test_single_escape(self):
        codes = np.array([1, ESCAPE, 65, 2], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [1]

    def test_escaped_255_literal(self):
        # ESCAPE followed by a literal 255 byte: only position 0 is an escape.
        codes = np.array([ESCAPE, ESCAPE, 3], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0]

    def test_chain_of_escaped_255s(self):
        # Four 255s = two escape/literal pairs.
        codes = np.array([ESCAPE] * 4 + [1], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0, 2]

    def test_odd_run_consumes_following_byte(self):
        # Three 255s: escapes at 0 and 2; the byte after the run is a literal.
        codes = np.array([ESCAPE] * 3 + [7], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0, 2]

    def test_scalar_and_vectorized_agree_on_255_data(self):
        table = SymbolTable([])
        data = bytes([255, 255, 65, 255])
        stream = table.compress(data)
        symbols = StringArray.from_pylist([])
        assert decode_stream_scalar(stream, symbols).tobytes() == data
        assert decode_stream_vectorized(stream, symbols).tobytes() == data

    def test_truncated_escape_raises(self):
        symbols = StringArray.from_pylist([])
        with pytest.raises(CorruptBlockError):
            decode_stream_scalar(bytes([ESCAPE]), symbols)
        with pytest.raises(CorruptBlockError):
            decode_stream_vectorized(bytes([ESCAPE]), symbols)


class TestFSSTScheme:
    def test_round_trip_urls(self, url_strings):
        payload, out = scheme_round_trip(FSST, url_strings)
        assert out == url_strings
        assert len(payload) < url_strings.nbytes / 2

    def test_round_trip_scalar(self, url_strings):
        _, out = scheme_round_trip(FSST, url_strings, vectorized=False)
        assert out == url_strings

    def test_empty_strings_survive(self):
        sa = StringArray.from_pylist(["", "abc", "", "abcabc"] * 100)
        _, out = scheme_round_trip(FSST, sa)
        assert out == sa

    def test_binary_data_with_255_bytes(self):
        sa = StringArray.from_pylist([b"\xff\xff\x00data", b"\xffmore\xff"] * 100)
        _, out = scheme_round_trip(FSST, sa)
        assert out == sa

    def test_stores_only_uncompressed_lengths(self, url_strings):
        # Decoding needs the lengths child but no per-string offsets: the
        # scheme output must be smaller than lengths + offsets would allow.
        payload, out = scheme_round_trip(FSST, url_strings)
        assert out.lengths().tolist() == url_strings.lengths().tolist()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(max_size=30), min_size=1, max_size=60))
def test_property_fsst_round_trip(values):
    sa = StringArray.from_pylist(values)
    if sa.buffer.size < 16:
        return  # below the viability threshold; scheme never sees such blocks
    _, out = scheme_round_trip(FSST, sa)
    assert out == sa


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=400))
def test_property_stream_decoders_agree(data):
    table = train_symbol_table(data)
    stream = table.compress(data)
    symbols = StringArray.from_pylist(table.symbols)
    scalar = decode_stream_scalar(stream, symbols).tobytes()
    vectorized = decode_stream_vectorized(stream, symbols).tobytes()
    assert scalar == data
    assert vectorized == data
