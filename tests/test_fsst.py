"""Tests for the FSST string compression scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.fsst import (
    ESCAPE,
    MAX_SYMBOLS,
    SymbolTable,
    _escape_positions,
    decode_stream_scalar,
    decode_stream_vectorized,
    train_symbol_table,
)
from repro.exceptions import CorruptBlockError
from repro.types import StringArray

from conftest import scheme_round_trip

FSST = get_scheme(SchemeId.FSST)


class TestSymbolTable:
    def test_empty_table_escapes_everything(self):
        table = SymbolTable([])
        out = table.compress(b"ab")
        assert out == bytes([ESCAPE, ord("a"), ESCAPE, ord("b")])

    def test_longest_match_wins(self):
        table = SymbolTable([b"ab", b"abcd"])
        out = table.compress(b"abcdab")
        assert out == bytes([1, 0])

    def test_max_symbols_enforced(self):
        with pytest.raises(ValueError):
            SymbolTable([bytes([i]) for i in range(256)])

    def test_compress_decompress_identity(self):
        table = SymbolTable([b"http", b"://", b"www.", b".com"])
        data = b"http://www.example.com"
        stream = table.compress(data)
        symbols = StringArray.from_pylist(table.symbols)
        assert decode_stream_scalar(stream, symbols).tobytes() == data
        assert decode_stream_vectorized(stream, symbols).tobytes() == data


class TestTraining:
    def test_learns_repeated_substrings(self):
        data = b"https://example.com/page " * 500
        table = train_symbol_table(data)
        assert len(table.symbols) <= MAX_SYMBOLS
        compressed = table.compress(data)
        assert len(compressed) < len(data) / 3

    def test_handles_empty_input(self):
        table = train_symbol_table(b"")
        assert table.compress(b"") == b""

    def test_symbols_bounded_to_8_bytes(self):
        table = train_symbol_table(b"abcdefghijklmnop" * 300)
        assert all(1 <= len(s) <= 8 for s in table.symbols)


class TestEscapeResolution:
    def test_no_escapes(self):
        assert _escape_positions(np.array([1, 2, 3], dtype=np.uint8)).size == 0

    def test_single_escape(self):
        codes = np.array([1, ESCAPE, 65, 2], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [1]

    def test_escaped_255_literal(self):
        # ESCAPE followed by a literal 255 byte: only position 0 is an escape.
        codes = np.array([ESCAPE, ESCAPE, 3], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0]

    def test_chain_of_escaped_255s(self):
        # Four 255s = two escape/literal pairs.
        codes = np.array([ESCAPE] * 4 + [1], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0, 2]

    def test_odd_run_consumes_following_byte(self):
        # Three 255s: escapes at 0 and 2; the byte after the run is a literal.
        codes = np.array([ESCAPE] * 3 + [7], dtype=np.uint8)
        assert _escape_positions(codes).tolist() == [0, 2]

    def test_scalar_and_vectorized_agree_on_255_data(self):
        table = SymbolTable([])
        data = bytes([255, 255, 65, 255])
        stream = table.compress(data)
        symbols = StringArray.from_pylist([])
        assert decode_stream_scalar(stream, symbols).tobytes() == data
        assert decode_stream_vectorized(stream, symbols).tobytes() == data

    def test_truncated_escape_raises(self):
        symbols = StringArray.from_pylist([])
        with pytest.raises(CorruptBlockError):
            decode_stream_scalar(bytes([ESCAPE]), symbols)
        with pytest.raises(CorruptBlockError):
            decode_stream_vectorized(bytes([ESCAPE]), symbols)


class TestFSSTScheme:
    def test_round_trip_urls(self, url_strings):
        payload, out = scheme_round_trip(FSST, url_strings)
        assert out == url_strings
        assert len(payload) < url_strings.nbytes / 2

    def test_round_trip_scalar(self, url_strings):
        _, out = scheme_round_trip(FSST, url_strings, vectorized=False)
        assert out == url_strings

    def test_empty_strings_survive(self):
        sa = StringArray.from_pylist(["", "abc", "", "abcabc"] * 100)
        _, out = scheme_round_trip(FSST, sa)
        assert out == sa

    def test_binary_data_with_255_bytes(self):
        sa = StringArray.from_pylist([b"\xff\xff\x00data", b"\xffmore\xff"] * 100)
        _, out = scheme_round_trip(FSST, sa)
        assert out == sa

    def test_stores_only_uncompressed_lengths(self, url_strings):
        # Decoding needs the lengths child but no per-string offsets: the
        # scheme output must be smaller than lengths + offsets would allow.
        payload, out = scheme_round_trip(FSST, url_strings)
        assert out.lengths().tolist() == url_strings.lengths().tolist()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.binary(max_size=30), min_size=1, max_size=60))
def test_property_fsst_round_trip(values):
    sa = StringArray.from_pylist(values)
    if sa.buffer.size < 16:
        return  # below the viability threshold; scheme never sees such blocks
    _, out = scheme_round_trip(FSST, sa)
    assert out == sa


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=400))
def test_property_stream_decoders_agree(data):
    table = train_symbol_table(data)
    stream = table.compress(data)
    symbols = StringArray.from_pylist(table.symbols)
    scalar = decode_stream_scalar(stream, symbols).tobytes()
    vectorized = decode_stream_vectorized(stream, symbols).tobytes()
    assert scalar == data
    assert vectorized == data


class TestMatcherEquivalence:
    """The indexed and LUT matchers must equal a straightforward greedy scan.

    ``SymbolTable.compress`` dispatches between a candidate-index loop and a
    full two-byte LUT (above ``_LUT_THRESHOLD``); both are rewrites of the
    original per-byte matcher, whose semantics — longest match first, lowest
    code on ties, escape otherwise — this reference re-implements directly.
    """

    @staticmethod
    def _reference_compress(table: SymbolTable, data: bytes) -> bytes:
        out = bytearray()
        pos = 0
        while pos < len(data):
            best_code, best_len = None, 0
            for code, sym in enumerate(table.symbols):
                if len(sym) > best_len and data.startswith(sym, pos):
                    best_code, best_len = code, len(sym)
            if best_code is None:
                out += bytes([ESCAPE, data[pos]])
                pos += 1
            else:
                out.append(best_code)
                pos += best_len
        return bytes(out)

    def test_matches_reference_across_lut_threshold(self, rng):
        from repro.encodings.fsst import _LUT_THRESHOLD

        words = [b"http", b"://", b"www.", b".com", b"/id/", b"abc", b"q=1", b"\xff\xff"]
        corpus = b"".join(words[i] for i in rng.integers(0, len(words), 2400))
        corpus += bytes(rng.integers(0, 256, 800, dtype=np.uint8))  # escape runs
        table = train_symbol_table(corpus)
        assert table.symbols, "training should learn symbols from this corpus"
        for size in (0, 1, 2, 63, 300, _LUT_THRESHOLD - 1, _LUT_THRESHOLD + 512):
            data = corpus[:size]
            assert table.compress(data) == self._reference_compress(table, data), size

    def test_counting_preserves_first_occurrence_order(self, rng):
        # Training's gain sort is stable and ties break on dict insertion
        # order, so the vectorised empty-table counter must list singles and
        # pairs in first-occurrence scan order, exactly like a naive loop.
        data = bytes(rng.integers(0, 64, 1000, dtype=np.uint8))
        singles, pairs = SymbolTable([]).compress_counting(data)
        naive_singles, naive_pairs = {}, {}
        for i in range(len(data)):
            s = data[i : i + 1]
            naive_singles[s] = naive_singles.get(s, 0) + 1
            if i:
                p = data[i - 1 : i + 1]
                naive_pairs[p] = naive_pairs.get(p, 0) + 1
        assert list(singles.items()) == list(naive_singles.items())
        assert list(pairs.items()) == list(naive_pairs.items())
