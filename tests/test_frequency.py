"""Tests for Frequency encoding (top value + bitmap + exceptions)."""

import numpy as np

from repro.core.config import BtrBlocksConfig
from repro.core.stats import compute_stats
from repro.encodings.base import SchemeId, get_scheme
from repro.types import ColumnType, StringArray

from conftest import scheme_round_trip

CONFIG = BtrBlocksConfig()
FREQ_INT = get_scheme(SchemeId.FREQUENCY_INT)
FREQ_DOUBLE = get_scheme(SchemeId.FREQUENCY_DOUBLE)
FREQ_STRING = get_scheme(SchemeId.FREQUENCY_STRING)


def dominant_ints(rng, n=5000, top=7, fraction=0.8):
    values = np.full(n, top, dtype=np.int32)
    exceptions = rng.random(n) >= fraction
    values[exceptions] = rng.integers(100, 200, int(exceptions.sum()))
    return values


class TestViability:
    def test_excluded_above_unique_threshold(self):
        stats = compute_stats(np.arange(100, dtype=np.int32), ColumnType.INTEGER)
        assert not FREQ_INT.is_viable(stats, CONFIG)

    def test_single_value_not_viable(self):
        # One Value handles that case strictly better.
        stats = compute_stats(np.zeros(100, dtype=np.int32), ColumnType.INTEGER)
        assert not FREQ_INT.is_viable(stats, CONFIG)

    def test_dominant_value_viable(self, rng):
        stats = compute_stats(dominant_ints(rng), ColumnType.INTEGER)
        assert FREQ_INT.is_viable(stats, CONFIG)


class TestNumericFrequency:
    def test_int_round_trip(self, rng):
        values = dominant_ints(rng)
        _, out = scheme_round_trip(FREQ_INT, values)
        assert np.array_equal(out, values)

    def test_double_round_trip(self, rng):
        values = np.zeros(2000)
        exc = rng.random(2000) >= 0.9
        values[exc] = np.round(rng.uniform(0, 10, int(exc.sum())), 2)
        _, out = scheme_round_trip(FREQ_DOUBLE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_scalar_matches_vectorized(self, rng):
        values = dominant_ints(rng, n=500)
        _, fast = scheme_round_trip(FREQ_INT, values, vectorized=True)
        _, slow = scheme_round_trip(FREQ_INT, values, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_compresses_dominant_value(self, rng):
        values = dominant_ints(rng, n=64_000, fraction=0.95)
        payload, _ = scheme_round_trip(FREQ_INT, values)
        assert len(payload) < values.nbytes / 5

    def test_exceptions_preserved_in_order(self, rng):
        values = np.zeros(100, dtype=np.int32)
        values[[3, 50, 99]] = [11, 22, 33]
        _, out = scheme_round_trip(FREQ_INT, values)
        assert out[3] == 11 and out[50] == 22 and out[99] == 33

    def test_nan_top_value(self):
        values = np.full(100, np.nan)
        values[::10] = 1.5
        _, out = scheme_round_trip(FREQ_DOUBLE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))


class TestStringFrequency:
    def test_round_trip(self, rng):
        pool = ["dominant"] * 90 + ["rare-a", "rare-b"] * 5
        values = StringArray.from_pylist([pool[i % len(pool)] for i in range(3000)])
        _, out = scheme_round_trip(FREQ_STRING, values)
        assert out == values

    def test_scalar_matches_vectorized(self):
        values = StringArray.from_pylist((["x"] * 9 + ["other"]) * 50)
        _, fast = scheme_round_trip(FREQ_STRING, values, vectorized=True)
        _, slow = scheme_round_trip(FREQ_STRING, values, vectorized=False)
        assert fast == slow

    def test_empty_string_dominant(self):
        values = StringArray.from_pylist(([""] * 9 + ["rare"]) * 30)
        _, out = scheme_round_trip(FREQ_STRING, values)
        assert out == values
