"""Exactness of the server's per-tenant accounting.

The property under test: every byte the store moves while the server is
serving belongs to exactly one tenant's ledger. Summed across tenants, the
ledgers must equal the store's global
:class:`~repro.cloud.objectstore.TransferStats` deltas — *exactly* for the
integer fields (GET requests, bytes, retries), to float round-off for the
accumulated seconds — and dollar costs must reproduce the global
:class:`~repro.cloud.pricing.PricingModel` formulas. This has to survive
the hard cases:

* concurrent interleavings (stages of different tenants alternate),
* retried requests (backoff and re-GETs bill to the retrying tenant),
* failed requests (a scan that dies mid-flight still pays for what it
  moved, including a failing *open*),
* rejected requests (billed exactly zero — not one GET).
"""

from __future__ import annotations

import os

import pytest

from repro.cloud.faults import FaultProfile
from repro.cloud.objectstore import SimulatedObjectStore
from repro.cloud.retry import RetryPolicy
from repro.exceptions import AdmissionRejectedError, BtrBlocksError, FormatError
from repro.observe import MetricsRegistry, use_registry
from repro.serve import (
    EventLoop,
    ScanRequest,
    ScanServer,
    WorkloadSpec,
    build_catalog,
    serve_workload,
)

SERVE_SEED = int(os.environ.get("REPRO_SERVE_SEED", "202408"), 0)

#: Float accumulations (seconds, dollars) may differ from the closed-form
#: total by round-off only.
FLOAT_TOL = 1e-9


def _ledger_sums(server: ScanServer) -> dict:
    ledgers = server.ledgers.values()
    return {
        "get_requests": sum(l.get_requests for l in ledgers),
        "bytes_fetched": sum(l.bytes_fetched for l in ledgers),
        "retries": sum(l.retries for l in ledgers),
        "backoff_seconds": sum(l.backoff_seconds for l in ledgers),
        "brownout_seconds": sum(l.brownout_seconds for l in ledgers),
        "wasted_bytes": sum(l.wasted_bytes for l in ledgers),
        "cost_usd": sum(l.cost_usd for l in ledgers),
    }


def _assert_ledgers_match_store(store: SimulatedObjectStore, server: ScanServer):
    """Ledger sums == TransferStats (reset before serving) field by field."""
    stats = store.stats
    sums = _ledger_sums(server)
    assert sums["get_requests"] == stats.get_requests
    assert sums["bytes_fetched"] == stats.bytes_downloaded
    assert sums["retries"] == stats.retries
    assert sums["backoff_seconds"] == pytest.approx(
        stats.backoff_seconds, abs=FLOAT_TOL
    )
    assert sums["brownout_seconds"] == pytest.approx(
        stats.brownout_seconds, abs=FLOAT_TOL
    )
    # Waste is a *view* of billed bytes (those billed to non-completions),
    # never an addition to them.
    assert 0 <= sums["wasted_bytes"] <= sums["bytes_fetched"]
    pricing = store.pricing
    global_cost = pricing.request_cost(stats.get_requests) + pricing.compute_cost(
        stats.bytes_downloaded / pricing.s3_bytes_per_second
    )
    assert sums["cost_usd"] == pytest.approx(global_cost, abs=FLOAT_TOL)


def _run_workload(spec: WorkloadSpec, faults=None, retry=None, **server_kwargs):
    registry = MetricsRegistry()
    with use_registry(registry):
        store = SimulatedObjectStore()
        profiles = build_catalog(store, tables=2, rows=1000, seed=SERVE_SEED)
        if retry is not None:
            store.retry = retry
        store.stats.reset()  # serving-only deltas; catalog writes don't count
        store.set_faults(faults)
        run = serve_workload(store, profiles, spec, **server_kwargs)
    return registry, store, run


class TestLedgerSumsAreExact:
    def test_clean_concurrent_interleavings(self):
        _, store, run = _run_workload(
            WorkloadSpec(tenants=8, requests_per_tenant=4, seed=SERVE_SEED),
            max_concurrency=4,
            queue_limit=64,
        )
        assert len(run["responses"]) == 32
        _assert_ledgers_match_store(store, run["server"])

    def test_retried_requests_bill_their_tenant(self):
        _, store, run = _run_workload(
            WorkloadSpec(tenants=6, requests_per_tenant=4, seed=SERVE_SEED),
            faults=FaultProfile(seed=5, transient_error_rate=0.2, throttle_rate=0.1),
            retry=RetryPolicy(max_attempts=8),
            max_concurrency=3,
            queue_limit=64,
        )
        server = run["server"]
        assert store.stats.retries > 0, "the fault profile never fired"
        assert sum(l.retries for l in server.ledgers.values()) == store.stats.retries
        assert sum(l.backoff_seconds for l in server.ledgers.values()) > 0
        _assert_ledgers_match_store(store, server)

    def test_rejected_requests_bill_zero(self):
        _, store, run = _run_workload(
            WorkloadSpec(tenants=16, requests_per_tenant=6, seed=SERVE_SEED),
            max_concurrency=1,
            queue_limit=2,
        )
        server = run["server"]
        assert run["rejected"], "backpressure never triggered"
        rejected_total = sum(l.rejected for l in server.ledgers.values())
        assert rejected_total == len(run["rejected"])
        # Even with rejections in the mix, sums stay exact: rejections added
        # nothing, so the served requests account for every byte.
        _assert_ledgers_match_store(store, server)

    def test_exactness_holds_at_every_interleaving_depth(self):
        # The same workload at different concurrency levels interleaves
        # stages completely differently — and with shared caches, *which*
        # tenant pays for a cold fetch legitimately shifts with the
        # schedule. What must not shift: every level serves the same
        # requests, and at every level the ledgers sum exactly to that
        # level's store deltas.
        spec = WorkloadSpec(tenants=5, requests_per_tenant=4, seed=SERVE_SEED)
        served = []
        for max_concurrency in (1, 2, 5):
            _, store, run = _run_workload(
                spec, max_concurrency=max_concurrency, queue_limit=64
            )
            assert not run["rejected"]
            _assert_ledgers_match_store(store, run["server"])
            served.append(
                sorted(
                    (r.request.tenant, r.request.table, r.request.kind)
                    for r in run["responses"]
                )
            )
        assert served[0] == served[1] == served[2]


class TestFailuresStillBalance:
    def _server(self, store):
        loop = EventLoop(clock=store.clock)
        store.clock.reset()
        return loop, ScanServer(store, loop, max_concurrency=2, queue_limit=16)

    def test_failed_open_bills_what_it_moved(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = SimulatedObjectStore()
            profiles = build_catalog(store, tables=1, rows=600, seed=SERVE_SEED)
            store.stats.reset()
            loop, server = self._server(store)
            outcomes = []

            async def missing():
                try:
                    await server.submit(
                        ScanRequest(tenant="lost", table="no-such-table")
                    )
                except (FormatError, BtrBlocksError) as error:
                    outcomes.append(type(error).__name__)

            async def fine():
                await server.submit(
                    ScanRequest(
                        tenant="ok", table=profiles[0].name, columns=("code",)
                    )
                )

            loop.create_task(missing(), "missing")
            loop.create_task(fine(), "fine")
            loop.run()

        assert outcomes, "the missing table was silently served"
        assert server.ledgers["lost"].failed == 1
        _assert_ledgers_match_store(store, server)

    def test_mid_scan_failure_bills_partial_consumption(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = SimulatedObjectStore()
            profiles = build_catalog(store, tables=1, rows=600, seed=SERVE_SEED)
            store.stats.reset()
            # Permanent damage + strict policy: the scan dies mid-flight
            # after real bytes moved.
            store.retry = RetryPolicy(max_attempts=2)
            loop, server = self._server(store)
            failures = []

            async def doomed():
                store.set_faults(FaultProfile(seed=9, corrupt_rate=1.0))
                try:
                    await server.submit(
                        ScanRequest(
                            tenant="victim",
                            table=profiles[0].name,
                            columns=profiles[0].columns,
                            on_corrupt="raise",
                        )
                    )
                except BtrBlocksError as error:
                    failures.append(type(error).__name__)
                finally:
                    store.set_faults(None)

            loop.create_task(doomed(), "doomed")
            loop.run()

        assert failures, "permanent corruption did not surface"
        victim = server.ledgers["victim"]
        assert victim.failed == 1
        assert victim.bytes_fetched > 0, "the failed scan moved bytes; bill them"
        _assert_ledgers_match_store(store, server)

    def test_rejection_is_typed_and_zero_before_any_traffic(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            store = SimulatedObjectStore()
            profiles = build_catalog(store, tables=1, rows=600, seed=SERVE_SEED)
            store.stats.reset()
            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=1, queue_limit=0)
            errors = []

            async def first():
                await server.submit(
                    ScanRequest(tenant="a", table=profiles[0].name, columns=("id",))
                )

            async def second():
                try:
                    await server.submit(
                        ScanRequest(
                            tenant="b", table=profiles[0].name, columns=("id",)
                        )
                    )
                except AdmissionRejectedError as error:
                    errors.append(error)

            loop.create_task(first(), "first")
            loop.create_task(second(), "second")
            loop.run()

        assert len(errors) == 1
        b = server.ledgers["b"]
        assert (b.get_requests, b.bytes_fetched, b.cost_usd) == (0, 0, 0.0)
        _assert_ledgers_match_store(store, server)


class TestOverloadLedgersStayExact:
    """Exactness must survive every cancellation point the overload layer
    adds: mid-flight deadline cancels, queue expiries, doomed-work sheds,
    budget fast-fails and open-breaker fast-fails — all on top of the
    brownout's injected latency, which bills to the tenants that burned it."""

    def test_chaos_with_the_full_layer_still_balances(self):
        from repro.cloud.breaker import BreakerPolicy, CircuitBreaker
        from repro.cloud.faults import seeded_brownouts

        episodes = seeded_brownouts(SERVE_SEED, horizon_seconds=1.5)
        registry, store, run = _run_workload(
            WorkloadSpec(tenants=10, requests_per_tenant=4, seed=SERVE_SEED),
            faults=FaultProfile(seed=SERVE_SEED, episodes=episodes),
            retry=RetryPolicy(max_attempts=8),
            catch_errors=True,
            max_concurrency=3,
            queue_limit=64,
            default_deadline_seconds=0.5,
            retry_budget_tokens=2.0,
            # Caches off: every scan meets the degraded store, so every
            # cancellation point gets real traffic to account for.
            column_cache_bytes=0,
            decode_cache_bytes=0,
            breaker=CircuitBreaker(BreakerPolicy(seed=SERVE_SEED)),
        )
        server = run["server"]
        # The layer actually exercised its cancellation points.
        assert run["failures"], "chaos never produced a typed in-flight failure"
        assert registry.get("server.deadline.queue_expired") > 0
        assert registry.get("server.deadline.shed") > 0
        assert store.stats.brownout_seconds > 0, "the brownout never bit"
        sums = _ledger_sums(server)
        assert sums["wasted_bytes"] > 0, "no failed request was mid-flight"
        _assert_ledgers_match_store(store, server)

    def test_tight_deadlines_shed_and_expire_billed_zero(self):
        registry, store, run = _run_workload(
            WorkloadSpec(
                tenants=12,
                requests_per_tenant=4,
                deadline_seconds=0.05,
                seed=SERVE_SEED,
            ),
            catch_errors=True,
            max_concurrency=1,
            queue_limit=4,
        )
        server = run["server"]
        shed = registry.get("server.deadline.shed")
        expired = registry.get("server.deadline.queue_expired")
        assert shed + expired > 0, "the 50 ms budget never doomed anything"
        # Shed and queue-expired requests were billed exactly zero, so the
        # survivors account for every byte the store moved.
        _assert_ledgers_match_store(store, server)


class TestRegistryMirrorsLedgers:
    def test_server_counters_equal_ledger_sums(self):
        registry, store, run = _run_workload(
            WorkloadSpec(tenants=6, requests_per_tenant=4, seed=SERVE_SEED),
            max_concurrency=3,
            queue_limit=64,
        )
        server = run["server"]
        sums = _ledger_sums(server)
        assert registry.get("server.get_requests") == sums["get_requests"]
        assert registry.get("server.bytes_fetched") == sums["bytes_fetched"]
        assert registry.get("server.retries") == sums["retries"]
        assert registry.get("server.cost_usd") == pytest.approx(
            sums["cost_usd"], abs=FLOAT_TOL
        )
        assert registry.get("server.completed") == sum(
            l.completed for l in server.ledgers.values()
        )

    def test_report_section_appears_after_serving(self):
        from repro.observe.report import build_report

        registry, _, run = _run_workload(
            WorkloadSpec(tenants=3, requests_per_tenant=3, seed=SERVE_SEED),
            max_concurrency=2,
            queue_limit=64,
        )
        report = build_report(registry)
        assert "server" in report
        section = report["server"]
        assert section["requests"] == 9
        assert section["admission"]["completed"] == len(run["responses"])
        server_report = run["server"].report()
        assert len(server_report["ledgers"]) == 3
        assert {l["tenant"] for l in server_report["ledgers"]} == {
            "tenant-00",
            "tenant-01",
            "tenant-02",
        }
