"""Tests for the compressed-table scan engine."""

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.config import BtrBlocksConfig
from repro.core.relation import Relation
from repro.query import Between, Equals, GreaterThan
from repro.query.engine import CompressedTable
from repro.types import Column


@pytest.fixture
def table(rng):
    n = 3000
    cities = ["PHOENIX", "RALEIGH", "OSLO"]
    relation = Relation("sales", [
        Column.ints("id", np.arange(n)),
        Column.doubles("price", np.round(rng.uniform(0, 100, n), 2)),
        Column.strings("city", [cities[i] for i in rng.integers(0, 3, n)]),
    ])
    return relation, CompressedTable.from_relation(
        relation, BtrBlocksConfig(block_size=1000)
    )


def oracle_mask(relation, where):
    mask = np.ones(relation.row_count, dtype=bool)
    for name, predicate in where.items():
        column = relation.column(name)
        mask &= np.asarray(predicate.evaluate(column.data), dtype=bool)
        mask &= ~column.null_mask()
    return mask


class TestMatchingRows:
    def test_single_predicate(self, table):
        relation, compressed = table
        where = {"price": GreaterThan(50.0)}
        expected = np.nonzero(oracle_mask(relation, where))[0]
        assert np.array_equal(compressed.matching_rows(where).to_array(), expected)

    def test_conjunction(self, table):
        relation, compressed = table
        where = {"price": Between(10.0, 60.0), "city": Equals("PHOENIX")}
        expected = np.nonzero(oracle_mask(relation, where))[0]
        assert np.array_equal(compressed.matching_rows(where).to_array(), expected)

    def test_empty_where_matches_all(self, table):
        relation, compressed = table
        assert len(compressed.matching_rows({})) == relation.row_count

    def test_contradiction_short_circuits(self, table):
        _, compressed = table
        where = {"id": Equals(5), "price": GreaterThan(1000.0)}
        assert compressed.count(where) == 0


class TestScan:
    def test_projection_and_filter(self, table):
        relation, compressed = table
        where = {"id": Between(100, 110)}
        out = compressed.scan(columns=["city", "price"], where=where)
        assert out.column_names() == ["city", "price"]
        assert out.row_count == 11

    def test_scan_without_filter_round_trips(self, table):
        relation, compressed = table
        out = compressed.scan()
        assert out.row_count == relation.row_count
        assert np.array_equal(np.asarray(out.column("id").data),
                              np.asarray(relation.column("id").data))

    def test_scan_values_match_oracle(self, table):
        relation, compressed = table
        where = {"city": Equals("OSLO")}
        out = compressed.scan(columns=["price"], where=where)
        expected = np.asarray(relation.column("price").data)[oracle_mask(relation, where)]
        assert np.array_equal(np.asarray(out.column("price").data), expected)


class TestAggregate:
    def test_sum_matches_numpy(self, table):
        relation, compressed = table
        where = {"city": Equals("PHOENIX")}
        expected = float(np.asarray(relation.column("price").data)[oracle_mask(relation, where)].sum())
        assert compressed.aggregate("price", "sum", where) == pytest.approx(expected)

    def test_min_max_mean(self, table):
        relation, compressed = table
        prices = np.asarray(relation.column("price").data)
        assert compressed.aggregate("price", "min") == prices.min()
        assert compressed.aggregate("price", "max") == prices.max()
        assert compressed.aggregate("price", "mean") == pytest.approx(prices.mean())

    def test_count_excludes_nulls(self, rng):
        relation = Relation("t", [
            Column.ints("a", np.arange(100), RoaringBitmap.from_positions([1, 2])),
        ])
        table = CompressedTable.from_relation(relation)
        assert table.aggregate("a", "count") == 98

    def test_empty_selection_is_nan(self, table):
        _, compressed = table
        result = compressed.aggregate("price", "mean", {"id": Equals(-1)})
        assert np.isnan(result)

    def test_string_aggregates_restricted(self, table):
        _, compressed = table
        with pytest.raises(ValueError):
            compressed.aggregate("city", "sum")
        assert compressed.aggregate("city", "count") == 3000

    def test_unknown_aggregate(self, table):
        _, compressed = table
        with pytest.raises(ValueError):
            compressed.aggregate("price", "median")


class TestZoneMapIntegration:
    def test_zone_maps_built_for_every_column(self, table):
        _, compressed = table
        assert "id" in compressed.zone_maps
        assert "price" in compressed.zone_maps
        # Strings get zone maps too now: byte-prefix bounds plus a Bloom
        # digest for low-cardinality blocks.
        assert "city" in compressed.zone_maps
        city = compressed.zone_maps["city"]
        assert all(e.min_bytes is not None for e in city.entries)

    def test_without_zone_maps_results_identical(self, table, rng):
        relation, with_maps = table
        without = CompressedTable.from_relation(
            relation, BtrBlocksConfig(block_size=1000), with_zone_maps=False
        )
        where = {"id": Between(1500, 1600)}
        assert with_maps.matching_rows(where) == without.matching_rows(where)
