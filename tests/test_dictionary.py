"""Tests for dictionary encoding (all types) and the fused RLE+Dict decode."""

import numpy as np
import pytest

from repro.core.config import BtrBlocksConfig
from repro.core.stats import compute_stats
from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.wire import unwrap
from repro.types import ColumnType, StringArray

from conftest import scheme_round_trip

CONFIG = BtrBlocksConfig()
DICT_INT = get_scheme(SchemeId.DICT_INT)
DICT_DOUBLE = get_scheme(SchemeId.DICT_DOUBLE)
DICT_STRING = get_scheme(SchemeId.DICT_STRING)


class TestViability:
    def test_needs_repetition(self):
        unique = compute_stats(np.arange(100, dtype=np.int32), ColumnType.INTEGER)
        assert not DICT_INT.is_viable(unique, CONFIG)

    def test_low_cardinality_viable(self):
        stats = compute_stats(np.repeat(np.arange(5), 20).astype(np.int32), ColumnType.INTEGER)
        assert DICT_INT.is_viable(stats, CONFIG)

    def test_unique_fraction_threshold(self):
        values = np.arange(100, dtype=np.int32)
        values[::10] = 0  # 91 distinct out of 100
        stats = compute_stats(values, ColumnType.INTEGER)
        assert not DICT_INT.is_viable(stats, CONFIG)


class TestNumericDict:
    def test_int_round_trip(self, rng):
        values = rng.integers(0, 50, 5000).astype(np.int32)
        _, out = scheme_round_trip(DICT_INT, values)
        assert np.array_equal(out, values)

    def test_double_round_trip(self, rng):
        pool = np.round(rng.uniform(0, 100, 20), 2)
        values = pool[rng.integers(0, 20, 5000)]
        _, out = scheme_round_trip(DICT_DOUBLE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_double_with_nan_pool(self):
        values = np.array([np.nan, 1.0, np.nan, 1.0] * 100)
        _, out = scheme_round_trip(DICT_DOUBLE, values)
        assert np.array_equal(out.view(np.uint64), values.view(np.uint64))

    def test_scalar_matches_vectorized(self, rng):
        values = rng.integers(0, 10, 1000).astype(np.int32)
        _, fast = scheme_round_trip(DICT_INT, values, vectorized=True)
        _, slow = scheme_round_trip(DICT_INT, values, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_compresses_low_cardinality(self, rng):
        values = rng.integers(0, 4, 64_000).astype(np.int32)
        payload, _ = scheme_round_trip(DICT_INT, values)
        assert len(payload) < values.nbytes / 8

    def test_negative_values(self):
        values = np.array([-1, -1, -2, -2, -1] * 100, dtype=np.int32)
        _, out = scheme_round_trip(DICT_INT, values)
        assert np.array_equal(out, values)


class TestStringDict:
    def test_round_trip(self, city_strings):
        _, out = scheme_round_trip(DICT_STRING, city_strings)
        assert out == city_strings

    def test_scalar_matches_vectorized(self, city_strings):
        _, fast = scheme_round_trip(DICT_STRING, city_strings, vectorized=True)
        _, slow = scheme_round_trip(DICT_STRING, city_strings, vectorized=False)
        assert fast == slow

    def test_pool_fsst_compression_kicks_in(self, url_strings):
        # URL dictionaries share substrings, so the pool should be
        # FSST-compressed and the payload smaller than the raw pool.
        payload, out = scheme_round_trip(DICT_STRING, url_strings)
        assert out == url_strings

    def test_empty_strings(self):
        sa = StringArray.from_pylist(["", "", "a", ""])
        _, out = scheme_round_trip(DICT_STRING, sa)
        assert out == sa

    def test_binary_safe(self):
        sa = StringArray.from_pylist([b"\x00\xff", b"\x00\xff", b"ok"] * 50)
        _, out = scheme_round_trip(DICT_STRING, sa)
        assert out == sa

    def test_first_appearance_code_order(self):
        from repro.encodings.strutil import encode_distinct

        sa = StringArray.from_pylist(["b", "a", "b", "c"])
        codes, uniques = encode_distinct(sa)
        assert codes.tolist() == [0, 1, 0, 2]
        assert uniques.to_pylist() == [b"b", b"a", b"c"]


class TestFusedRLEDict:
    def _payload_with_rle_codes(self, avg_run):
        values = np.repeat(np.arange(100, dtype=np.int32), avg_run)
        payload, out = scheme_round_trip(DICT_INT, values)
        return values, payload, out

    def test_long_runs_round_trip_through_fusion(self):
        values, payload, out = self._payload_with_rle_codes(avg_run=50)
        assert np.array_equal(out, values)

    def test_codes_actually_rle_compressed(self):
        values = np.repeat(np.arange(100, dtype=np.int32), 50)
        from repro.core.compressor import compress_block
        blob = compress_block(values, ColumnType.INTEGER)
        # Either Dict->RLE codes or direct RLE wins: both exercise run logic.
        scheme_id, _, _ = unwrap(blob)
        assert scheme_id in (SchemeId.DICT_INT, SchemeId.RLE_INT)

    def test_short_runs_take_unfused_path(self):
        values, payload, out = self._payload_with_rle_codes(avg_run=2)
        assert np.array_equal(out, values)

    def test_fused_string_path(self):
        sa = StringArray.from_pylist(
            [c for c in ["AAA", "BB", "CCCC"] for _ in range(200)]
        )
        _, out = scheme_round_trip(DICT_STRING, sa)
        assert out == sa
