"""Tests for the optional extension schemes.

Named ``test_zz_*`` so it runs last: :func:`register_extension_schemes`
mutates the global registry, and earlier tests assert default-pool scheme
choices.
"""

import numpy as np
import pytest

from repro.core.compressor import compress_block
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_block
from repro.core.stats import compute_stats
from repro.encodings.base import SchemeId
from repro.encodings.extensions import (
    DELTA_ZIGZAG_INT_ID,
    TRUNCATION_INT_ID,
    DeltaZigZagInt,
    TruncationInt,
    register_extension_schemes,
)
from repro.encodings.wire import unwrap
from repro.types import ColumnType

from conftest import scheme_round_trip

CONFIG = BtrBlocksConfig()


@pytest.fixture(scope="module", autouse=True)
def extensions():
    return register_extension_schemes()


class TestRegistration:
    def test_idempotent(self):
        first = register_extension_schemes()
        second = register_extension_schemes()
        assert [s.scheme_id for s in first] == [s.scheme_id for s in second]

    def test_in_default_pool_after_registration(self):
        from repro.encodings.base import default_pool

        ids = {s.scheme_id for s in default_pool(ColumnType.INTEGER)}
        assert TRUNCATION_INT_ID in ids
        assert DELTA_ZIGZAG_INT_ID in ids


class TestTruncation:
    def test_viability_needs_narrow_range(self):
        scheme = TruncationInt()
        narrow = compute_stats(np.arange(100, dtype=np.int32) + 10**6, ColumnType.INTEGER)
        wide = compute_stats(np.array([0, 2**30], dtype=np.int32), ColumnType.INTEGER)
        assert scheme.is_viable(narrow, CONFIG)
        assert not scheme.is_viable(wide, CONFIG)

    def test_round_trip_byte_width(self, rng):
        values = (rng.integers(0, 200, 2000) + 5_000_000).astype(np.int32)
        payload, out = scheme_round_trip(TruncationInt(), values)
        assert np.array_equal(out, values)
        assert len(payload) < 2100  # ~1 byte per value

    def test_round_trip_two_byte_width(self, rng):
        values = (rng.integers(0, 40_000, 2000) - 20_000).astype(np.int32)
        _, out = scheme_round_trip(TruncationInt(), values)
        assert np.array_equal(out, values)


class TestDeltaZigZag:
    def test_sorted_keys_round_trip(self, rng):
        values = np.cumsum(rng.integers(1, 10, 5000)).astype(np.int32) + 10**8
        payload, out = scheme_round_trip(DeltaZigZagInt(), values)
        assert np.array_equal(out, values)
        assert len(payload) < values.nbytes / 3

    def test_descending_values(self):
        values = np.arange(5000, 0, -1, dtype=np.int32)
        _, out = scheme_round_trip(DeltaZigZagInt(), values)
        assert np.array_equal(out, values)

    def test_extreme_jumps_take_fallback(self):
        values = np.array([-(2**31), 2**31 - 1, 0, -(2**31)], dtype=np.int32)
        _, out = scheme_round_trip(DeltaZigZagInt(), values)
        assert np.array_equal(out, values)

    def test_selector_picks_it_for_sorted_keys(self, rng):
        values = np.cumsum(rng.integers(1, 20, 64_000)).astype(np.int32) + 10**7
        blob = compress_block(values, ColumnType.INTEGER)
        scheme_id, _, _ = unwrap(blob)
        # Sorted wide-range keys: delta coding should beat plain bit-packing.
        assert scheme_id == DELTA_ZIGZAG_INT_ID
        assert np.array_equal(decompress_block(blob, ColumnType.INTEGER), values)

    def test_improves_ratio_on_sorted_keys(self, rng):
        values = np.cumsum(rng.integers(1, 20, 64_000)).astype(np.int32)
        with_ext = len(compress_block(values, ColumnType.INTEGER))
        without = len(compress_block(
            values, ColumnType.INTEGER,
            BtrBlocksConfig(excluded_schemes=frozenset({DELTA_ZIGZAG_INT_ID, TRUNCATION_INT_ID})),
        ))
        assert with_ext < without
