"""Unit tests for the fault-injection, retry/backoff and integrity layer.

Deterministic-by-seed behaviour of :class:`FaultProfile`, the S3-style 416
semantics of ``get_range``, billing rules (server-rejected attempts are
free, truncated reads bill bytes served), retry accounting on the simulated
clock, the ``on_corrupt`` degradation policies end to end, and the
reliability section of JSON reports.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cloud import FaultProfile, RetryPolicy, SimulatedClock, SimulatedObjectStore
from repro.cloud.faults import FaultInjector
from repro.cloud.pricing import PricingModel
from repro.cloud.remote_table import RemoteTable
from repro.cloud.retry import call_with_retry
from repro.cloud.scan import upload_btrblocks
from repro.core.compressor import compress_column, compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_column
from repro.core.file_format import (
    block_checksum,
    column_from_bytes,
    column_to_bytes,
    relation_to_files,
)
from repro.core.relation import Relation
from repro.exceptions import (
    FormatError,
    IntegrityError,
    RangeNotSatisfiableError,
    RetryExhaustedError,
    ThrottledError,
    TransientRequestError,
)
from repro.observe import MetricsRegistry, use_registry
from repro.observe.report import build_report
from repro.types import Column, columns_equal


def make_store(profile=None, **kwargs) -> SimulatedObjectStore:
    return SimulatedObjectStore(faults=profile, **kwargs)


@pytest.fixture
def relation() -> Relation:
    rng = np.random.default_rng(99)
    n = 1024
    return Relation(
        "t",
        [
            Column.ints("a", rng.integers(0, 1000, n).astype(np.int32)),
            Column.doubles("b", np.round(rng.uniform(0, 10, n), 2)),
        ],
    )


# -- 416 semantics and billing -------------------------------------------------


class TestRangeSemantics:
    def test_out_of_bounds_start_raises(self):
        store = make_store()
        store.put("k", b"0123456789")
        with pytest.raises(RangeNotSatisfiableError):
            store.get_range("k", 10, 1)
        with pytest.raises(RangeNotSatisfiableError):
            store.get_range("k", 999, 4)

    def test_negative_range_raises(self):
        store = make_store()
        store.put("k", b"0123456789")
        with pytest.raises(RangeNotSatisfiableError):
            store.get_range("k", -1, 4)
        with pytest.raises(RangeNotSatisfiableError):
            store.get_range("k", 0, -4)

    def test_rejected_range_is_not_billed(self):
        store = make_store()
        store.put("k", b"0123456789")
        with pytest.raises(RangeNotSatisfiableError):
            store.get_range("k", 10, 1)
        assert store.stats.get_requests == 0
        assert store.stats.bytes_downloaded == 0

    def test_suffix_overrun_serves_suffix(self):
        """A range that begins in-bounds but runs past the end is
        satisfiable (S3 serves the suffix) — never a silent short read."""
        store = make_store()
        store.put("k", b"0123456789")
        assert store.get_range("k", 8, 100) == b"89"
        assert store.stats.bytes_downloaded == 2  # bills bytes served

    def test_empty_object_chunked_get(self):
        store = make_store()
        store.put("k", b"")
        assert store.get_chunked("k") == b""
        assert store.stats.get_requests == 1

    def test_missing_key_is_format_error_not_transient(self):
        store = make_store(FaultProfile(transient_error_rate=1.0))
        with pytest.raises(FormatError):
            store.get("nope")
        with pytest.raises(FormatError):
            store.get_range("nope", 0, 1)


class TestBilling:
    def test_server_rejected_attempts_unbilled(self):
        store = make_store(
            FaultProfile(seed=3, throttle_rate=1.0), retry=RetryPolicy(max_attempts=2)
        )
        store.put("k", b"abc")
        with pytest.raises(RetryExhaustedError):
            store.get("k")
        assert store.stats.get_requests == 0
        assert store.stats.bytes_downloaded == 0

    def test_truncated_read_bills_bytes_served(self):
        store = make_store(
            FaultProfile(seed=0, truncate_rate=1.0), retry=RetryPolicy(max_attempts=2)
        )
        store.put("k", b"x" * 100)
        with pytest.raises(RetryExhaustedError):
            store.get_range("k", 0, 100)
        assert store.stats.get_requests == 2  # both attempts served bytes
        assert 0 <= store.stats.bytes_downloaded < 200


# -- fault determinism ---------------------------------------------------------


class TestFaultDeterminism:
    def test_same_seed_same_fault_sequence(self):
        def run(seed: int) -> list[str]:
            injector = FaultInjector(
                FaultProfile(seed=seed, transient_error_rate=0.3, throttle_rate=0.3)
            )
            outcomes = []
            for i in range(50):
                try:
                    injector.before_serve(f"k{i}")
                    outcomes.append("ok")
                except ThrottledError:
                    outcomes.append("throttle")
                except TransientRequestError:
                    outcomes.append("transient")
            return outcomes

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_payload_damage_deterministic(self):
        def damage(seed: int) -> bytes:
            injector = FaultInjector(FaultProfile(seed=seed, corrupt_rate=1.0))
            return injector.damage_payload(b"\x00" * 64, ranged=True)

        assert damage(5) == damage(5)
        assert damage(5) != b"\x00" * 64

    def test_zero_profile_injects_nothing(self):
        injector = FaultInjector(FaultProfile())
        payload = b"hello"
        for i in range(100):
            injector.before_serve(f"k{i}")
            assert injector.damage_payload(payload, ranged=True) == payload


# -- retry layer ---------------------------------------------------------------


class TestRetry:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay_seconds=0.1, max_delay_seconds=0.5, multiplier=2.0, jitter=0.0
        )
        rng = FaultProfile().rng()
        delays = [policy.backoff_seconds(i, rng) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_shrinks_delay_only(self):
        policy = RetryPolicy(base_delay_seconds=1.0, multiplier=1.0, jitter=0.5)
        rng = FaultProfile(seed=11).rng()
        for i in range(20):
            delay = policy.backoff_seconds(i, rng)
            assert 0.5 <= delay <= 1.0

    def test_retry_then_succeed(self):
        clock = SimulatedClock()
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientRequestError("boom")
            return "done"

        with use_registry(MetricsRegistry()):
            out = call_with_retry(
                flaky, RetryPolicy(max_attempts=4), clock, FaultProfile().rng()
            )
        assert out == "done"
        assert calls["n"] == 3
        assert clock.now_seconds > 0.0

    def test_non_transient_not_retried(self):
        clock = SimulatedClock()
        calls = {"n": 0}

        def broken():
            calls["n"] += 1
            raise FormatError("structural")

        with use_registry(MetricsRegistry()), pytest.raises(FormatError):
            call_with_retry(
                broken, RetryPolicy(max_attempts=5), clock, FaultProfile().rng()
            )
        assert calls["n"] == 1
        assert clock.now_seconds == 0.0

    def test_exhausted_error_chains_last_failure(self):
        with use_registry(MetricsRegistry()), pytest.raises(RetryExhaustedError) as info:
            call_with_retry(
                lambda: (_ for _ in ()).throw(ThrottledError("SlowDown")),
                RetryPolicy(max_attempts=2),
                SimulatedClock(),
                FaultProfile().rng(),
            )
        assert isinstance(info.value.__cause__, ThrottledError)

    def test_exhausted_error_is_not_transient(self):
        """RetryExhaustedError must not itself be retryable, or an outer
        retry loop would multiply the attempt budget."""
        assert not issubclass(RetryExhaustedError, TransientRequestError)

    def test_retry_counters_recorded(self):
        registry = MetricsRegistry()
        store = make_store(
            FaultProfile(seed=1, transient_error_rate=0.3),
            retry=RetryPolicy(max_attempts=12),
        )
        store.put("k", b"payload" * 100)
        with use_registry(registry):
            for _ in range(20):
                assert store.get("k") == b"payload" * 100
        counters = registry.snapshot()["counters"]
        assert counters["cloud.faults.transient"] > 0
        assert counters["cloud.retry.attempts"] == store.stats.retries > 0
        assert counters["cloud.retry.backoff_seconds"] == pytest.approx(
            store.stats.backoff_seconds
        )

    def test_backoff_lands_in_simulated_transfer_time(self):
        store = make_store(
            FaultProfile(seed=2, transient_error_rate=0.5),
            retry=RetryPolicy(max_attempts=8),
        )
        store.put("k", b"z" * 4096)
        for _ in range(10):
            store.get("k")
        assert store.stats.backoff_seconds > 0.0
        baseline = make_store()
        baseline.put("k", b"z" * 4096)
        for _ in range(10):
            baseline.get("k")
        extra = store.simulated_transfer_seconds() - baseline.simulated_transfer_seconds()
        assert extra == pytest.approx(store.stats.backoff_seconds)


# -- on_corrupt degradation end to end -----------------------------------------


def _damaged_column_blob() -> bytes:
    column = compress_column(
        Column.ints("v", np.arange(500, dtype=np.int32)),
        BtrBlocksConfig(block_size=128),  # several blocks; damage hits one
    )
    blob = bytearray(column_to_bytes(column))
    # Aim at the last *block's* payload explicitly — the file now ends with
    # the statistics footer, which the decoder doesn't checksum-gate.
    from repro.core.file_format import column_block_ranges

    offset, size = column_block_ranges(column)[-1]
    blob[offset + size - 3] ^= 0x40
    return bytes(blob)


class TestOnCorrupt:
    def test_raise_is_default(self):
        column = column_from_bytes(_damaged_column_blob())
        with pytest.raises(IntegrityError):
            decompress_column(column)

    def test_skip_drops_damaged_rows(self):
        column = column_from_bytes(_damaged_column_blob())
        out = decompress_column(column, on_corrupt="skip")
        assert 0 < len(out.data) < 500

    def test_null_block_preserves_row_count(self):
        column = column_from_bytes(_damaged_column_blob())
        out = decompress_column(column, on_corrupt="null_block")
        assert len(out.data) == 500
        assert out.nulls is not None and len(out.nulls) > 0

    def test_unknown_mode_rejected(self):
        column = column_from_bytes(_damaged_column_blob())
        with pytest.raises(ValueError):
            decompress_column(column, on_corrupt="pretend")

    def test_checksum_seeded_with_count(self):
        assert block_checksum(b"abc", None, 1) != block_checksum(b"abc", None, 2)


def _corrupting_table(relation, max_attempts, on_corrupt="raise"):
    """A RemoteTable over an always-corrupting store, built with known-good
    metadata so the corruption lands on the checksummed column path."""
    store = make_store(
        FaultProfile(seed=4, corrupt_rate=1.0),
        retry=RetryPolicy(max_attempts=max_attempts),
    )
    files = relation_to_files(compress_relation(relation))
    store.put_many(files)
    metadata = json.loads(files["t/table.meta"])
    return RemoteTable(store, "t", metadata, on_corrupt=on_corrupt)


class TestRemoteTableIntegrity:
    def test_persistent_corruption_degrades_or_raises(self, relation):
        registry = MetricsRegistry()
        with use_registry(registry):
            table = _corrupting_table(relation, max_attempts=3)
            with pytest.raises(IntegrityError):
                table.scan(columns=["a"])
        counters = registry.snapshot()["counters"]
        assert counters["cloud.table.integrity_refetches"] == 3
        assert counters["cloud.table.integrity_failures"] == 1

    def test_persistent_corruption_null_block_scan(self, relation):
        table = _corrupting_table(relation, max_attempts=2, on_corrupt="null_block")
        out = table.scan(columns=["a"])
        assert len(out.columns[0].data) == len(relation.columns[0].data)

    def test_unparseable_metadata_refetched_then_typed_error(self, relation):
        """Corrupted metadata (plain JSON, no checksum) is refetched up to
        the retry budget and then fails with FormatError, never a raw
        JSONDecodeError."""
        registry = MetricsRegistry()
        store = make_store(
            FaultProfile(seed=4, corrupt_rate=1.0), retry=RetryPolicy(max_attempts=3)
        )
        with use_registry(registry):
            upload_btrblocks(store, compress_relation(relation))
            with pytest.raises(FormatError):
                RemoteTable.open(store, "t")
        assert registry.snapshot()["counters"]["cloud.table.meta_refetches"] == 3

    def test_transient_faults_do_not_reach_integrity_layer(self, relation):
        registry = MetricsRegistry()
        store = make_store(
            FaultProfile(seed=5, transient_error_rate=0.3),
            retry=RetryPolicy(max_attempts=8),
        )
        with use_registry(registry):
            upload_btrblocks(store, compress_relation(relation))
            table = RemoteTable.open(store, "t")
            out = table.scan()
        for original, restored in zip(relation.columns, out.columns):
            assert columns_equal(original, restored)
        counters = registry.snapshot()["counters"]
        assert counters.get("cloud.table.integrity_refetches", 0) == 0


# -- reports -------------------------------------------------------------------


class TestBrownoutEpisodes:
    def test_active_window_is_half_open(self):
        from repro.cloud.faults import BrownoutEpisode

        episode = BrownoutEpisode(start_seconds=1.0, duration_seconds=2.0)
        assert not episode.active(0.999999)
        assert episode.active(1.0)  # inclusive start
        assert episode.active(2.5)
        assert not episode.active(3.0)  # exclusive end
        assert episode.end_seconds == 3.0

    @pytest.mark.parametrize("seed", [0, 7, 202408])
    def test_seeded_episodes_are_deterministic_and_cover_the_burst(self, seed):
        from repro.cloud.faults import seeded_brownouts

        horizon = 10.0
        episodes = seeded_brownouts(seed, horizon)
        assert episodes == seeded_brownouts(seed, horizon)
        assert len(episodes) == 2
        # The contract chaos runs rely on, for *any* seed: the first episode
        # opens near t=0 and spans roughly half the horizon, so a workload's
        # arrival burst always meets degraded service.
        first = episodes[0]
        assert first.start_seconds <= 0.05 * horizon
        assert 0.45 * horizon <= first.duration_seconds <= 0.65 * horizon
        assert first.transient_error_rate >= 0.45
        assert first.extra_latency_seconds > 0

    def test_episode_latency_is_counted_and_only_inside_the_window(self):
        from repro.cloud.faults import BrownoutEpisode

        registry = MetricsRegistry()
        profile = FaultProfile(
            seed=3,
            episodes=(
                BrownoutEpisode(
                    start_seconds=1.0,
                    duration_seconds=1.0,
                    extra_latency_seconds=0.02,
                ),
            ),
        )
        injector = FaultInjector(profile)
        with use_registry(registry):
            assert injector.episode_latency(0.5) == 0.0  # before the window
            assert injector.episode_latency(1.5) == pytest.approx(0.02)
            assert injector.episode_latency(2.5) == 0.0  # after the window
        assert registry.get("cloud.faults.brownout_requests") == 1
        assert registry.get("cloud.faults.brownout_latency_seconds") == pytest.approx(
            0.02
        )

    def test_before_serve_rates_elevate_only_inside_the_window(self):
        from repro.cloud.faults import BrownoutEpisode

        # Base rates are zero; the episode saturates the transient rate, so
        # the roll's outcome depends purely on where the clock stands.
        profile = FaultProfile(
            seed=3,
            episodes=(
                BrownoutEpisode(
                    start_seconds=1.0,
                    duration_seconds=1.0,
                    transient_error_rate=1.0,
                ),
            ),
        )
        injector = FaultInjector(profile)
        with use_registry(MetricsRegistry()):
            injector.before_serve("k", now_seconds=0.5)  # quiet before
            with pytest.raises(TransientRequestError):
                injector.before_serve("k", now_seconds=1.5)
            injector.before_serve("k", now_seconds=2.5)  # quiet after

    def test_store_accrues_brownout_seconds_inside_the_window(self, relation):
        from repro.cloud.faults import BrownoutEpisode

        registry = MetricsRegistry()
        # A long, fault-free episode that only injects latency: every GET of
        # the scan lands inside it and must bill its extra seconds to the
        # store's transfer accounting.
        store = make_store(
            FaultProfile(
                seed=5,
                episodes=(
                    BrownoutEpisode(
                        start_seconds=0.0,
                        duration_seconds=1e6,
                        extra_latency_seconds=0.05,
                    ),
                ),
            )
        )
        with use_registry(registry):
            upload_btrblocks(store, compress_relation(relation))
            store.stats.reset()
            store.clock.reset()
            RemoteTable.open(store, "t").scan()
        gets = store.stats.get_requests
        assert gets > 0
        assert store.stats.brownout_seconds == pytest.approx(0.05 * gets)
        assert registry.get("cloud.faults.brownout_requests") == gets


class TestReliabilityReport:
    def test_fault_free_report_has_no_reliability_section(self, relation):
        registry = MetricsRegistry()
        store = make_store()
        with use_registry(registry):
            upload_btrblocks(store, compress_relation(relation))
            RemoteTable.open(store, "t").scan()
            report = build_report(registry)
        assert "reliability" not in report

    def test_faulty_scan_report_rolls_up_reliability(self, relation):
        registry = MetricsRegistry()
        store = make_store(
            FaultProfile(seed=6, transient_error_rate=0.4, timeout_rate=0.1),
            retry=RetryPolicy(max_attempts=10),
        )
        with use_registry(registry):
            upload_btrblocks(store, compress_relation(relation))
            RemoteTable.open(store, "t").scan()
            report = build_report(registry)
        reliability = report["reliability"]
        assert reliability["faults"]["transient"] > 0
        assert reliability["retries"]["attempts"] > 0
        assert reliability["retries"]["backoff_seconds"] > 0.0

    def test_breaker_and_budget_counters_roll_up(self):
        registry = MetricsRegistry()
        with use_registry(registry):
            registry.incr("cloud.breaker.opened")
            registry.incr("cloud.breaker.fast_fail", 3)
            registry.incr("retry.budget.spent", 5)
            registry.incr("retry.budget.exhausted")
            report = build_report(registry)
        reliability = report["reliability"]
        assert reliability["breaker"] == {"opened": 1, "fast_fail": 3}
        assert reliability["retry_budget"] == {"spent": 5, "exhausted": 1}
