"""Compressed-domain scan + selective materialisation vs the NumPy oracle.

The compressed-domain executor answers predicates without materialising
values (code-space compilation, per-run RLE evaluation, page-header
reject/accept), and the selection-vector decode materialises only chosen
rows (``decode_block_filtered``). Both are pure optimisations, so this
suite locks down the only property that matters: they can never change an
answer. Every check compares against an oracle computed independently over
the uncompressed data:

* ``scan_column`` positions == NumPy mask positions, across data shapes
  crafted to steer the selector into every scheme family (and their
  cascades), four NULL layouts and every predicate type;
* ``filter_column`` values == decompress-evaluate-gather, bit-for-bit;
* ``decode_block_filtered(positions)`` == full decode + take, for random
  selections, on every block of every shape;
* ``RemoteTable.scan`` / ``scan_pipelined`` with conjunctions == the same
  oracle, over a committed table;
* corrupted blocks produce the same typed errors and degrade results
  (``raise`` / ``skip`` / ``null_block``) through the filtered path as the
  full-decode path — never silently wrong values.

Seeds follow ``REPRO_FAULT_SEED`` so CI's randomized fault-matrix run
replays through this suite too.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.cloud import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable, TableWriter
from repro.core.compressor import compress_column, compress_relation
from repro.core.decompressor import (
    CorruptBlockResult,
    decode_block,
    decode_block_filtered,
    decompress_column,
    make_context,
)
from repro.core.config import BtrBlocksConfig
from repro.core.file_format import column_from_bytes, column_to_bytes
from repro.core.relation import Relation
from repro.encodings import strutil
from repro.encodings.dictionary import clear_string_pool_cache
from repro.exceptions import (
    BtrBlocksError,
    CorruptBlockError,
    IntegrityError,
)
from repro.observe import MetricsRegistry, use_registry
from repro.query.executor import filter_column, scan_column
from repro.query.predicates import Between, Equals, GreaterThan, In, IsNull, LessThan
from repro.types import Column, ColumnType, StringArray

ROWS = 2048
BLOCK = 512
SEED = int(os.environ.get("REPRO_FAULT_SEED", "20240808"), 0)

CITIES = ["OSLO", "PARIS", "ROME", "ATHENS", "PHOENIX", "RALEIGH", "BERGEN"]


# -- data shapes: one per scheme family (and cascade) --------------------------


def _shape_one_value(rng):
    return Column.ints("v", np.full(ROWS, 42, dtype=np.int32))


def _shape_rle(rng):
    # Sorted run values: RLE whose values child is FOR/bit-packed — the
    # cascade where per-run evaluation meets page-header bounds.
    runs = np.sort(rng.integers(0, 5_000, ROWS // 16)).astype(np.int32)
    return Column.ints("v", np.repeat(runs, 16)[:ROWS])


def _shape_bitpack(rng):
    return Column.ints("v", rng.integers(0, 255, ROWS).astype(np.int32))


def _shape_sorted(rng):
    return Column.ints("v", np.sort(rng.integers(0, 100_000, ROWS)).astype(np.int32))


def _shape_fastpfor(rng):
    values = rng.integers(0, 64, ROWS)
    outliers = rng.random(ROWS) < 0.02
    values[outliers] = rng.integers(2**20, 2**28, int(outliers.sum()))
    return Column.ints("v", values.astype(np.int32))


def _shape_frequency(rng):
    values = np.where(rng.random(ROWS) < 0.9, 7, rng.integers(0, 10_000, ROWS))
    return Column.ints("v", values.astype(np.int32))


def _shape_dict_int(rng):
    vocab = np.asarray([3, 52, 77, 901, 4096, 70_001, 900_017], dtype=np.int32)
    return Column.ints("v", vocab[rng.integers(0, vocab.size, ROWS)])


def _shape_decimal(rng):
    return Column.doubles("v", np.round(rng.uniform(0.0, 500.0, ROWS), 2))


def _shape_dict_double(rng):
    vocab = np.asarray([0.25, 1.5, 3.75, 99.875, -12.5], dtype=np.float64)
    return Column.doubles("v", vocab[rng.integers(0, vocab.size, ROWS)])


def _shape_dict_string(rng):
    return Column.strings("v", [CITIES[i] for i in rng.integers(0, len(CITIES), ROWS)])


def _shape_dict_string_runs(rng):
    # Long categorical runs: dictionary whose code stream fuses into RLE —
    # the compiled code predicate evaluates once per run.
    ids = np.repeat(rng.integers(0, len(CITIES), ROWS // 32), 32)[:ROWS]
    return Column.strings("v", [CITIES[i] for i in ids])


def _shape_fsst(rng):
    return Column.strings(
        "v",
        [
            f"https://example.com/api/v2/item/{int(i):06d}?tag={CITIES[int(i) % 7]}"
            for i in rng.integers(0, 900, ROWS)
        ],
    )


SHAPES = {
    "one_value": _shape_one_value,
    "rle": _shape_rle,
    "bitpack": _shape_bitpack,
    "sorted": _shape_sorted,
    "fastpfor": _shape_fastpfor,
    "frequency": _shape_frequency,
    "dict_int": _shape_dict_int,
    "decimal": _shape_decimal,
    "dict_double": _shape_dict_double,
    "dict_string": _shape_dict_string,
    "dict_string_runs": _shape_dict_string_runs,
    "fsst": _shape_fsst,
}

NULL_LAYOUTS = ["none", "sparse", "dense", "blocky"]


def _null_bitmap(rng, layout: str) -> "RoaringBitmap | None":
    if layout == "none":
        return None
    if layout == "sparse":
        positions = rng.choice(ROWS, size=max(1, ROWS // 20), replace=False)
    elif layout == "dense":
        positions = rng.choice(ROWS, size=ROWS // 2, replace=False)
    else:  # "blocky": a NULL run straddling block boundaries
        start = int(rng.integers(0, ROWS // 2))
        positions = np.arange(start, min(ROWS, start + ROWS // 3))
    return RoaringBitmap.from_positions(np.sort(positions))


def _make_column(shape: str, null_layout: str) -> Column:
    rng = np.random.default_rng(SEED + hash(shape) % 10_000)
    column = SHAPES[shape](rng)
    return Column(column.name, column.ctype, column.data, _null_bitmap(rng, null_layout))


# -- predicates derived from the data ------------------------------------------


def _predicates(column: Column) -> list:
    """(id, predicate) pairs that straddle real values for this column."""
    if column.ctype is ColumnType.STRING:
        values = list(column.data)
        present = values[0].decode()
        return [
            ("eq", Equals(present)),
            ("eq-absent", Equals("ZANZIBAR")),
            ("between", Between("A", "P")),
            ("in", In([present, "BERGEN", "NOWHERE"])),
            ("isnull", IsNull()),
        ]
    data = np.asarray(column.data)
    lo = data.min()
    q10, q50, q90 = np.quantile(data, [0.1, 0.5, 0.9])
    present = data[len(data) // 3]
    caster = float if column.ctype is ColumnType.DOUBLE else int
    return [
        ("eq", Equals(caster(present))),
        ("eq-absent", Equals(caster(lo) - 17)),
        ("between", Between(caster(q10), caster(q50))),
        ("between-empty", Between(caster(data.max()) + 10, caster(data.max()) + 20)),
        ("gt", GreaterThan(caster(q90))),
        ("gt-inclusive", GreaterThan(caster(q50), inclusive=True)),
        ("lt-inclusive", LessThan(caster(q10), inclusive=True)),
        ("in", In([caster(present), caster(q90), caster(lo) - 99])),
        ("isnull", IsNull()),
    ]


# -- the oracle ----------------------------------------------------------------


def _oracle_mask(column: Column, predicate) -> np.ndarray:
    nulls = np.zeros(len(column), dtype=bool)
    if column.nulls is not None:
        nulls[column.nulls.to_array()] = True
    if isinstance(predicate, IsNull):
        return nulls
    return np.asarray(predicate.evaluate(column.data), dtype=bool) & ~nulls


def _gather(ctype: ColumnType, values, positions: np.ndarray):
    if ctype is ColumnType.STRING:
        return strutil.gather(values, np.asarray(positions, dtype=np.int64))
    return np.asarray(values)[positions]


def _values_equal(ctype: ColumnType, got, expected) -> bool:
    if ctype is ColumnType.STRING:
        return list(got) == list(expected)
    got = np.asarray(got)
    expected = np.asarray(expected)
    if got.shape != expected.shape or got.dtype != expected.dtype:
        return False
    # Bit-for-bit, so NaN payloads and negative zero count too.
    return bool(np.array_equal(got.view(np.uint8), expected.view(np.uint8)))


# -- scan / filter / filtered-decode equivalence -------------------------------


@pytest.mark.parametrize("null_layout", NULL_LAYOUTS)
@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_scan_and_filter_match_oracle(shape, null_layout):
    column = _make_column(shape, null_layout)
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    decoded = decompress_column(compressed)
    assert _values_equal(column.ctype, decoded.data, column.data)

    for case_id, predicate in _predicates(column):
        mask = _oracle_mask(column, predicate)
        context = f"{shape}/{null_layout}/{case_id}"

        got = scan_column(compressed, predicate).to_array()
        assert np.array_equal(got, np.flatnonzero(mask)), context

        if isinstance(predicate, IsNull):
            continue  # filter_column materialises value rows only
        filtered = filter_column(compressed, predicate)
        expected = _gather(column.ctype, column.data, np.flatnonzero(mask))
        assert _values_equal(column.ctype, filtered.data, expected), context


@pytest.mark.parametrize("shape", sorted(SHAPES))
def test_filtered_decode_matches_full_decode_take(shape):
    """decode_block_filtered(positions) == decode + take, on every block."""
    rng = np.random.default_rng(SEED + 1)
    column = _make_column(shape, "none")
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    ctx = make_context()
    for block in compressed.blocks:
        full = decode_block(block, compressed.ctype, ctx)
        for size in (0, 1, 7, block.count):
            if size > block.count:
                continue
            positions = np.sort(rng.choice(block.count, size=size, replace=False))
            got = decode_block_filtered(block, compressed.ctype, ctx, positions)
            expected = _gather(compressed.ctype, full, positions)
            assert _values_equal(compressed.ctype, got, expected), (shape, size)


def test_matrix_exercises_multiple_scheme_families():
    """The shape matrix must actually steer the selector broadly, or the
    oracle checks above silently degrade to testing one code path."""
    roots = set()
    for shape in SHAPES:
        column = _make_column(shape, "none")
        compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
        roots.update(block.root_scheme_name for block in compressed.blocks)
    assert len(roots) >= 5, f"only {sorted(roots)} reached"


def test_filtered_decode_positions_contract():
    """Out-of-range positions are an integrity violation, not an index bug."""
    column = _make_column("bitpack", "none")
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    ctx = make_context()
    block = compressed.blocks[0]
    with pytest.raises(CorruptBlockError):
        decode_block_filtered(
            block, compressed.ctype, ctx, np.asarray([block.count], dtype=np.int64)
        )
    with pytest.raises(CorruptBlockError):
        decode_block_filtered(block, compressed.ctype, ctx, np.asarray([-1], dtype=np.int64))


def test_filtered_decode_counters_scale_with_selectivity():
    column = _make_column("sorted", "none")
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    data = np.asarray(column.data)

    def rows_selected(fraction: float) -> int:
        hi = int(np.quantile(data, fraction))
        registry = MetricsRegistry()
        with use_registry(registry):
            filter_column(compressed, Between(int(data.min()), hi))
        return int(registry.get("query.cdomain.filtered.rows_selected"))

    narrow, wide = rows_selected(0.01), rows_selected(0.5)
    assert 0 < narrow < wide
    assert narrow <= ROWS * 0.05  # decode work tracks selectivity


def test_string_pool_cache_hits_on_repeat_scans():
    column = _make_column("dict_string", "none")
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    clear_string_pool_cache()
    registry = MetricsRegistry()
    with use_registry(registry):
        first = filter_column(compressed, Equals(CITIES[0]))
        second = filter_column(compressed, Equals(CITIES[0]))
    assert list(first.data) == list(second.data)
    assert registry.get("query.cdomain.pool_cache.miss") > 0
    assert registry.get("query.cdomain.pool_cache.hit") > 0
    clear_string_pool_cache()


# -- remote surfaces: committed table, conjunctions ----------------------------


def _remote_relation() -> Relation:
    rng = np.random.default_rng(SEED + 2)
    key = np.sort(rng.integers(0, 100_000, ROWS)).astype(np.int32)
    price = np.round(rng.uniform(0.0, 500.0, ROWS), 2)
    city = [CITIES[i] for i in rng.integers(0, len(CITIES), ROWS)]
    return Relation(
        "cdomain",
        [
            Column.ints("key", key, nulls=_null_bitmap(rng, "sparse")),
            Column.doubles("price", price),
            Column.strings("city", city, nulls=_null_bitmap(rng, "sparse")),
        ],
    )


def _relation_oracle_mask(relation: Relation, where: dict) -> np.ndarray:
    mask = np.ones(len(relation.columns[0]), dtype=bool)
    for name, predicate in where.items():
        mask &= _oracle_mask(relation.column(name), predicate)
    return mask


def test_remote_scan_surfaces_match_oracle():
    relation = _remote_relation()
    compressed = compress_relation(relation, BtrBlocksConfig(block_size=BLOCK))
    store = SimulatedObjectStore()
    TableWriter(store).write(compressed)
    key = np.asarray(relation.column("key").data)
    lo, hi = int(np.quantile(key, 0.02)), int(np.quantile(key, 0.25))
    cases = [
        ("range", {"key": Between(lo, hi)}),
        ("eq-str", {"city": Equals("OSLO")}),
        ("conjunction", {"key": Between(lo, int(np.quantile(key, 0.9))),
                         "city": In(["ROME", "PARIS"])}),
        ("conjunction-null", {"price": GreaterThan(100.0), "city": IsNull()}),
    ]
    for case_id, where in cases:
        mask = _relation_oracle_mask(relation, where)
        positions = np.flatnonzero(mask)
        expected_keys = np.asarray(relation.column("key").data)[positions]

        table = RemoteTable.open(store, relation.name)
        got = table.scan(columns=["key"], where=where)
        assert _values_equal(ColumnType.INTEGER, got.columns[0].data, expected_keys), case_id

        table = RemoteTable.open(store, relation.name)
        piped, _report = table.scan_pipelined(columns=["key"], where=where)
        assert _values_equal(
            ColumnType.INTEGER, piped.columns[0].data, expected_keys
        ), case_id


# -- corruption: filtered decode keeps decode_block's contract -----------------


CORRUPT_SHAPES = ["rle", "sorted", "fastpfor", "frequency", "dict_string", "fsst"]


def _checksummed(compressed):
    """Round-trip through the v2 container so blocks carry stored CRC32s."""
    return column_from_bytes(column_to_bytes(compressed))


@pytest.mark.parametrize("shape", CORRUPT_SHAPES)
def test_corrupt_block_filtered_decode_matrix(shape):
    """A payload flip surfaces identically through the filtered path:
    IntegrityError under ``raise``, an empty part under ``skip``, a NULL
    placeholder of exactly ``len(positions)`` under ``null_block``."""
    column = _make_column(shape, "none")
    compressed = _checksummed(compress_column(column, BtrBlocksConfig(block_size=BLOCK)))
    ctx = make_context()
    block = compressed.blocks[1]
    payload = bytearray(block.data)
    payload[len(payload) // 2] ^= 0xFF
    block.data = bytes(payload)
    positions = np.asarray([0, 1, min(5, block.count - 1)], dtype=np.int64)

    with pytest.raises(IntegrityError):
        decode_block_filtered(block, compressed.ctype, ctx, positions, on_corrupt="raise")
    skipped = decode_block_filtered(block, compressed.ctype, ctx, positions, on_corrupt="skip")
    assert isinstance(skipped, CorruptBlockResult) and len(skipped) == 0
    nulled = decode_block_filtered(
        block, compressed.ctype, ctx, positions, on_corrupt="null_block"
    )
    assert isinstance(nulled, CorruptBlockResult) and len(nulled) == positions.size


@pytest.mark.parametrize("shape", CORRUPT_SHAPES)
def test_corrupt_block_filter_column_degrades_cleanly(shape):
    """filter_column under degrade policies answers exactly the clean blocks'
    matches — the damaged block's rows vanish, nothing else changes."""
    column = _make_column(shape, "none")
    compressed = _checksummed(compress_column(column, BtrBlocksConfig(block_size=BLOCK)))
    corrupt_index = 1
    block = compressed.blocks[corrupt_index]
    payload = bytearray(block.data)
    payload[len(payload) // 2] ^= 0xFF
    block.data = bytes(payload)

    _case_id, predicate = _predicates(column)[0]  # Equals on a present value
    with pytest.raises(IntegrityError):
        filter_column(compressed, predicate, on_corrupt="raise")

    # The oracle, restricted to rows outside the damaged block.
    start = sum(b.count for b in compressed.blocks[:corrupt_index])
    mask = _oracle_mask(column, predicate)
    mask[start : start + block.count] = False
    expected = _gather(column.ctype, column.data, np.flatnonzero(mask))
    for policy in ("skip", "null_block"):
        got = filter_column(compressed, predicate, on_corrupt=policy)
        assert _values_equal(column.ctype, got.data, expected), policy


@pytest.mark.parametrize("shape", CORRUPT_SHAPES)
def test_raw_node_flips_never_hang_filtered_decode(shape):
    """Checksum-less blocks keep the historical weaker contract through the
    filtered path: a damaged node either raises a typed error or returns a
    result of the requested length — never a hang, never a wrong length."""
    import struct

    acceptable = (
        BtrBlocksError,
        ValueError,
        KeyError,
        IndexError,
        OverflowError,
        EOFError,
        struct.error,
    )
    rng = np.random.default_rng(SEED + 3)
    column = _make_column(shape, "none")
    compressed = compress_column(column, BtrBlocksConfig(block_size=BLOCK))
    ctx = make_context()
    block = compressed.blocks[0]
    positions = np.sort(rng.choice(block.count, size=16, replace=False))
    for offset in rng.integers(0, len(block.data), 40):
        damaged = bytearray(block.data)
        damaged[int(offset)] ^= 0x40
        clone = type(block)(count=block.count, data=bytes(damaged), nulls=block.nulls)
        try:
            result = decode_block_filtered(clone, compressed.ctype, ctx, positions)
        except acceptable:
            continue
        assert len(result) == positions.size, f"offset {int(offset)}"
