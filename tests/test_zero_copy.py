"""Bit-identity of the zero-copy decode path and the decode cache.

The tentpole contract: ``decompress_column``'s preallocated ``out=`` path
and cache-served decodes must be byte-equal to the legacy per-block
assembly (``decode_block`` + ``assemble_column``) for every scheme family ×
dtype × NULL layout — including when ~5% of blocks are damaged, under every
``on_corrupt`` mode. A warm cache must never mask fresh corruption, and
``DecodeLimits`` must bind before the cache can serve anything.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.cache import DecodeCache
from repro.core.compressor import compress_column
from repro.core.config import BtrBlocksConfig, DEFAULT_DECODE_LIMITS
from repro.core.decompressor import (
    ON_CORRUPT_MODES,
    assemble_column,
    decode_block,
    decompress_column,
    make_context,
)
from repro.core.file_format import column_from_bytes, column_to_bytes
from repro.exceptions import DecodeLimitError, IntegrityError
from repro.observe import MetricsRegistry, use_registry
from repro.types import Column, ColumnType, StringArray

SEED = int(os.environ.get("REPRO_FAULT_SEED", "418"), 0)
ROWS = 3000
#: Small blocks so every column spans several of them (~6 at ROWS=3000) —
#: multi-block is what exercises slice offsets and compaction.
CONFIG = BtrBlocksConfig(block_size=512)


def _scheme_columns() -> "dict[str, Column]":
    """One workload per scheme family, shaped to make that scheme win."""
    rng = np.random.default_rng(SEED)
    fastpfor = rng.integers(0, 64, ROWS)
    outliers = rng.random(ROWS) < 0.02
    fastpfor[outliers] = rng.integers(2**20, 2**28, int(outliers.sum()))
    vocab = [f"category-{i:04d}" for i in range(64)]
    return {
        "one_value": Column.ints("v", np.full(ROWS, 7, dtype=np.int64)),
        "rle": Column.ints("v", np.repeat(rng.integers(0, 50, ROWS // 20 + 1), 20)[:ROWS]),
        "frequency": Column.ints(
            "v", np.where(rng.random(ROWS) < 0.9, 42, rng.integers(0, 10_000, ROWS))
        ),
        "bitpack": Column.ints("v", rng.integers(0, 255, ROWS)),
        "fastpfor": Column.ints("v", fastpfor),
        "pseudodecimal": Column.doubles("v", np.round(rng.uniform(0, 10_000, ROWS), 2)),
        "dictionary": Column.strings(
            "v", [vocab[i] for i in rng.integers(0, len(vocab), ROWS)]
        ),
        "fsst": Column.strings(
            "v", [f"https://example.com/api/v2/item/{int(x):08x}" for x in
                  rng.integers(0, 2**31, ROWS)]
        ),
    }


NULL_LAYOUTS = {
    "no_nulls": None,
    "sparse_nulls": lambda n: np.arange(0, n, 97),
    "dense_nulls": lambda n: np.arange(0, n, 2),
}


def _with_nulls(column: Column, layout: str) -> Column:
    make = NULL_LAYOUTS[layout]
    if make is None:
        return column
    nulls = RoaringBitmap.from_positions(make(len(column)))
    return Column(column.name, column.ctype, column.data, nulls)


def _compressed(column: Column):
    """A checksummed (v2) in-memory column, as a remote read would see it."""
    return column_from_bytes(column_to_bytes(compress_column(column, CONFIG)))


def _legacy_decode(compressed, on_corrupt: str = "raise") -> Column:
    """The pre-tentpole path: per-block decode + concatenating assembly."""
    ctx = make_context(True)
    parts = [
        decode_block(block, compressed.ctype, ctx, on_corrupt=on_corrupt)
        for block in compressed.blocks
    ]
    return assemble_column(compressed, parts)


def _assert_bit_identical(a: Column, b: Column) -> None:
    assert a.name == b.name and a.ctype is b.ctype
    if a.ctype is ColumnType.STRING:
        assert isinstance(a.data, StringArray) and isinstance(b.data, StringArray)
        assert np.array_equal(a.data.offsets, b.data.offsets)
        assert np.array_equal(a.data.buffer, b.data.buffer)
    else:
        assert a.data.dtype == b.data.dtype
        assert a.data.tobytes() == b.data.tobytes()
    assert (a.nulls or RoaringBitmap()) == (b.nulls or RoaringBitmap())


def _damage(compressed, rate: float = 0.05):
    """Flip one payload byte in ~rate of the blocks (at least one)."""
    damaged = column_from_bytes(column_to_bytes(compressed))
    rng = np.random.default_rng(SEED + 1)
    hits = [i for i in range(len(damaged.blocks)) if rng.random() < rate]
    if not hits:
        hits = [len(damaged.blocks) // 2]
    for index in hits:
        block = damaged.blocks[index]
        data = bytearray(block.data)
        data[len(data) // 2] ^= 0x40
        damaged.blocks[index] = dataclasses.replace(block, data=bytes(data))
    return damaged, hits


_CASES = [
    (scheme, layout)
    for scheme in _scheme_columns()
    for layout in NULL_LAYOUTS
]


@pytest.fixture(scope="module")
def columns():
    return _scheme_columns()


@pytest.mark.parametrize("scheme,layout", _CASES, ids=[f"{s}-{l}" for s, l in _CASES])
def test_zero_copy_matches_legacy(columns, scheme, layout):
    compressed = _compressed(_with_nulls(columns[scheme], layout))
    assert len(compressed.blocks) > 1
    _assert_bit_identical(decompress_column(compressed), _legacy_decode(compressed))


@pytest.mark.parametrize("scheme,layout", _CASES, ids=[f"{s}-{l}" for s, l in _CASES])
def test_cache_hit_matches_legacy(columns, scheme, layout):
    compressed = _compressed(_with_nulls(columns[scheme], layout))
    registry = MetricsRegistry()
    cache = DecodeCache(64 << 20)
    with use_registry(registry):
        first = decompress_column(compressed, cache=cache, cache_key=("obj", 1))
        second = decompress_column(compressed, cache=cache, cache_key=("obj", 1))
    legacy = _legacy_decode(compressed)
    _assert_bit_identical(first, legacy)
    _assert_bit_identical(second, legacy)
    if compressed.ctype is not ColumnType.STRING:
        # Numeric columns take the cached zero-copy path: the first pass
        # misses and fills, the second is served entirely from the cache.
        assert registry.get("decode.cache.miss") == len(compressed.blocks)
        assert registry.get("decode.cache.hit") == len(compressed.blocks)


@pytest.mark.parametrize("mode", [m for m in ON_CORRUPT_MODES if m != "raise"])
@pytest.mark.parametrize("scheme,layout", _CASES, ids=[f"{s}-{l}" for s, l in _CASES])
def test_damaged_blocks_degrade_identically(columns, scheme, layout, mode):
    compressed = _compressed(_with_nulls(columns[scheme], layout))
    damaged, hits = _damage(compressed)
    assert hits
    _assert_bit_identical(
        decompress_column(damaged, on_corrupt=mode),
        _legacy_decode(damaged, on_corrupt=mode),
    )


@pytest.mark.parametrize("scheme,layout", _CASES, ids=[f"{s}-{l}" for s, l in _CASES])
def test_damaged_blocks_raise_identically(columns, scheme, layout):
    damaged, _hits = _damage(_compressed(_with_nulls(columns[scheme], layout)))
    with pytest.raises(IntegrityError):
        decompress_column(damaged)
    with pytest.raises(IntegrityError):
        _legacy_decode(damaged)


@pytest.mark.parametrize("mode", ON_CORRUPT_MODES)
def test_warm_cache_never_masks_damage(columns, mode):
    """A cache warmed with the clean rows must not hide later corruption.

    The damaged block keeps its stored checksum, so its cache key still
    matches the clean entry — the hit-side CRC re-check is the only thing
    standing between a warm cache and silently serving stale rows.
    """
    compressed = _compressed(columns["bitpack"])
    cache = DecodeCache(64 << 20)
    key = ("obj", 1)
    decompress_column(compressed, cache=cache, cache_key=key)
    assert len(cache) == len(compressed.blocks)
    damaged, _hits = _damage(compressed)
    if mode == "raise":
        with pytest.raises(IntegrityError):
            decompress_column(damaged, on_corrupt=mode, cache=cache, cache_key=key)
    else:
        _assert_bit_identical(
            decompress_column(damaged, on_corrupt=mode, cache=cache, cache_key=key),
            _legacy_decode(damaged, on_corrupt=mode),
        )


def test_decode_limits_bind_before_cache(columns):
    """``max_rows_per_block`` rejects the column even with every block cached."""
    compressed = _compressed(columns["bitpack"])
    cache = DecodeCache(64 << 20)
    decompress_column(compressed, cache=cache, cache_key=("obj", 1))
    limits = dataclasses.replace(DEFAULT_DECODE_LIMITS, max_rows_per_block=100)
    with pytest.raises(DecodeLimitError):
        decompress_column(compressed, limits=limits, cache=cache, cache_key=("obj", 1))


def test_cache_capacity_zero_never_serves(columns):
    compressed = _compressed(columns["rle"])
    registry = MetricsRegistry()
    cache = DecodeCache(0)
    with use_registry(registry):
        decompress_column(compressed, cache=cache, cache_key=("obj", 1))
        out = decompress_column(compressed, cache=cache, cache_key=("obj", 1))
    assert registry.get("decode.cache.hit") == 0
    assert len(cache) == 0
    _assert_bit_identical(out, _legacy_decode(compressed))
