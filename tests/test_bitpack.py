"""Tests for FastBP128 and FastPFOR integer packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encodings.base import SchemeId, get_scheme
from repro.encodings.bitpack import (
    PAGE,
    bit_lengths,
    pack_pages,
    paginate,
    unpack_pages,
    unpack_pages_scalar,
)
from repro.encodings.fastpfor import choose_widths

from conftest import scheme_round_trip

BP = get_scheme(SchemeId.FAST_BP128)
PFOR = get_scheme(SchemeId.FAST_PFOR)


class TestBitLengths:
    def test_zero(self):
        assert bit_lengths(np.array([0])).tolist() == [0]

    def test_powers_of_two(self):
        values = np.array([1, 2, 4, 255, 256, 2**31])
        assert bit_lengths(values).tolist() == [1, 2, 3, 8, 9, 32]


class TestPaginate:
    def test_exact_pages(self):
        deltas, refs = paginate(np.arange(256, dtype=np.int32))
        assert deltas.shape == (2, PAGE)
        assert refs.tolist() == [0, 128]

    def test_tail_padding(self):
        deltas, refs = paginate(np.arange(130, dtype=np.int32))
        assert deltas.shape == (2, PAGE)
        # Padding uses the last value, so the tail page packs to few bits.
        assert deltas[1, 2:].max() == deltas[1, 1]

    def test_empty(self):
        deltas, refs = paginate(np.empty(0, dtype=np.int32))
        assert deltas.shape[0] == 0 and refs.size == 0

    def test_negative_values(self):
        deltas, refs = paginate(np.array([-100, -50, -100] * 50, dtype=np.int32))
        assert refs[0] == -100
        assert deltas.min() == 0


class TestPackUnpack:
    @pytest.mark.parametrize("width", [0, 1, 3, 7, 8, 13, 20, 31, 33])
    def test_single_width(self, width, rng):
        deltas = rng.integers(0, 2**width if width else 1, (4, PAGE)).astype(np.uint64)
        widths = np.full(4, width, dtype=np.int64)
        packed = pack_pages(deltas, widths)
        assert len(packed) == 4 * 16 * width
        out = unpack_pages(packed, widths)
        assert np.array_equal(out, deltas)

    def test_mixed_widths(self, rng):
        widths = np.array([0, 5, 17, 5, 31], dtype=np.int64)
        deltas = np.stack([
            rng.integers(0, max(2**w, 1), PAGE).astype(np.uint64) for w in widths
        ])
        packed = pack_pages(deltas, widths)
        assert np.array_equal(unpack_pages(packed, widths), deltas)

    def test_scalar_unpack_matches(self, rng):
        widths = np.array([3, 11], dtype=np.int64)
        deltas = np.stack([
            rng.integers(0, 2**w, PAGE).astype(np.uint64) for w in widths
        ])
        packed = pack_pages(deltas, widths)
        assert np.array_equal(unpack_pages_scalar(packed, widths), deltas)


class TestFastBP128:
    def test_round_trip_small_range(self, rng):
        values = rng.integers(100_000, 100_100, 5000).astype(np.int32)
        payload, out = scheme_round_trip(BP, values)
        assert np.array_equal(out, values)
        assert len(payload) < values.nbytes / 3

    def test_round_trip_negatives(self, rng):
        values = rng.integers(-1000, 1000, 3000).astype(np.int32)
        _, out = scheme_round_trip(BP, values)
        assert np.array_equal(out, values)

    def test_full_int32_range(self):
        values = np.array([-(2**31), 2**31 - 1, 0, -1] * 64, dtype=np.int32)
        _, out = scheme_round_trip(BP, values)
        assert np.array_equal(out, values)

    def test_non_page_multiple(self, rng):
        values = rng.integers(0, 100, 333).astype(np.int32)
        _, out = scheme_round_trip(BP, values)
        assert np.array_equal(out, values)

    def test_scalar_matches_vectorized(self, rng):
        values = rng.integers(0, 1000, 500).astype(np.int32)
        _, fast = scheme_round_trip(BP, values, vectorized=True)
        _, slow = scheme_round_trip(BP, values, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_constant_column_tiny(self):
        values = np.zeros(64_000, dtype=np.int32)
        payload, out = scheme_round_trip(BP, values)
        assert np.array_equal(out, values)
        assert len(payload) < 6000  # 0-bit pages, only refs + widths


class TestChooseWidths:
    def test_no_outliers_uses_max_width(self, rng):
        deltas = rng.integers(0, 16, (3, PAGE)).astype(np.uint64)
        widths = choose_widths(deltas)
        assert (widths == 4).all()

    def test_outliers_shrink_width(self):
        deltas = np.ones((1, PAGE), dtype=np.uint64)
        deltas[0, 5] = 2**30  # one outlier should not force 31-bit lanes
        widths = choose_widths(deltas)
        assert widths[0] == 1

    def test_empty(self):
        assert choose_widths(np.zeros((0, PAGE), dtype=np.uint64)).size == 0


class TestFastPFOR:
    def test_round_trip_with_outliers(self, rng):
        values = rng.integers(0, 100, 5000).astype(np.int32)
        outliers = rng.choice(5000, 50, replace=False)
        values[outliers] = rng.integers(2**25, 2**30, 50)
        payload, out = scheme_round_trip(PFOR, values)
        assert np.array_equal(out, values)

    def test_beats_bp_on_outlier_data(self, rng):
        values = rng.integers(0, 64, 64_000).astype(np.int32)
        outliers = rng.choice(64_000, 600, replace=False)
        values[outliers] = 2**29
        bp_payload, _ = scheme_round_trip(BP, values)
        pfor_payload, _ = scheme_round_trip(PFOR, values)
        assert len(pfor_payload) < len(bp_payload)

    def test_scalar_matches_vectorized(self, rng):
        values = rng.integers(0, 100, 700).astype(np.int32)
        values[::100] = 2**28
        _, fast = scheme_round_trip(PFOR, values, vectorized=True)
        _, slow = scheme_round_trip(PFOR, values, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_all_exceptions_page(self):
        # A page where every value is "large" still round-trips.
        values = np.arange(2**20, 2**20 + 200, dtype=np.int32)
        _, out = scheme_round_trip(PFOR, values)
        assert np.array_equal(out, values)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=300))
def test_property_bp_round_trip(values):
    arr = np.array(values, dtype=np.int32)
    _, out = scheme_round_trip(BP, arr)
    assert np.array_equal(out, arr)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1, max_size=300))
def test_property_pfor_round_trip(values):
    arr = np.array(values, dtype=np.int32)
    _, out = scheme_round_trip(PFOR, arr)
    assert np.array_equal(out, arr)
