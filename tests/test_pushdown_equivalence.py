"""Pushdown equivalence: predicate scans must be invisible to the answer.

Every fast path a predicate can take — compressed-domain execution, local
zone-map pruning, manifest zone maps skipping whole GETs on the cloud path,
Bloom-digest probes on strings — is an *optimisation*, so the one property
that matters is that none of them can change a query result. This suite
locks that down the brute-force way: random relations × every predicate
type × several null layouts, with the oracle computed independently in
plain NumPy over the uncompressed data, and the answers compared
bit-for-bit (``columns_equal`` — NaN payloads and negative zero included).

Four execution surfaces are checked against the same oracle:

* :class:`~repro.query.engine.CompressedTable.scan` (local, zone maps on);
* :class:`~repro.cloud.remote_table.RemoteTable.scan` over a committed
  (``TableWriter``) table — the manifest-pruned block-GET path;
* :meth:`RemoteTable.scan_pipelined` with a predicate;
* :class:`RemoteTable` over the legacy ``upload_btrblocks`` layout.

Seeds are fixed per parameter id, so a failure replays deterministically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.cloud import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable, TableWriter
from repro.cloud.scan import upload_btrblocks
from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.relation import Relation
from repro.query.engine import CompressedTable
from repro.query.predicates import (
    Between,
    Equals,
    GreaterThan,
    In,
    IsNull,
    LessThan,
)
from repro.types import Column, ColumnType, StringArray, columns_equal

ROWS = 3000
BLOCK = 512

CITIES = ["OSLO", "PARIS", "ROME", "ATHENS", "PHOENIX", "RALEIGH", "BERGEN"]


# -- random relations ----------------------------------------------------------


def _null_bitmap(rng, rows: int, layout: str) -> "RoaringBitmap | None":
    if layout == "none":
        return None
    if layout == "sparse":
        positions = rng.choice(rows, size=max(1, rows // 20), replace=False)
    elif layout == "dense":
        positions = rng.choice(rows, size=rows // 2, replace=False)
    else:  # "blocky": whole runs of NULLs, aligned badly with block edges
        start = int(rng.integers(0, rows // 2))
        positions = np.arange(start, min(rows, start + rows // 3))
    return RoaringBitmap.from_positions(np.sort(positions))


def _make_relation(seed: int, null_layout: str) -> Relation:
    """Columns picked to push the selector into different scheme families:
    a clustered sorted key (prunable), a skewed small-domain int, round
    decimals, and low-cardinality strings (dict/FSST territory)."""
    rng = np.random.default_rng(seed)
    key = np.sort(rng.integers(0, 100_000, ROWS)).astype(np.int32)
    skew = np.where(
        rng.random(ROWS) < 0.9, 7, rng.integers(0, 1000, ROWS)
    ).astype(np.int32)
    price = np.round(rng.uniform(0.0, 500.0, ROWS), 2)
    city = [CITIES[i] for i in rng.integers(0, len(CITIES), ROWS)]
    return Relation(
        "pushdown",
        [
            Column.ints("key", key, nulls=_null_bitmap(rng, ROWS, null_layout)),
            Column.ints("skew", skew),
            Column.doubles("price", price, nulls=_null_bitmap(rng, ROWS, null_layout)),
            Column.strings("city", city, nulls=_null_bitmap(rng, ROWS, null_layout)),
        ],
    )


# -- the oracle: plain NumPy over the uncompressed relation --------------------


def _oracle_mask(relation: Relation, where: dict) -> np.ndarray:
    """Conjunction semantics, computed independently of every fast path:
    value predicates never match NULL rows; IsNull matches exactly them."""
    mask = np.ones(len(relation.columns[0]), dtype=bool)
    for name, predicate in where.items():
        column = relation.column(name)
        nulls = np.zeros(len(column), dtype=bool)
        if column.nulls is not None:
            nulls[column.nulls.to_array()] = True
        if isinstance(predicate, IsNull):
            mask &= nulls
        else:
            mask &= predicate.evaluate(column.data) & ~nulls
    return mask


def _filter_relation(relation: Relation, names: list, mask: np.ndarray) -> list:
    """The expected output columns for ``scan(columns=names, where=...)``."""
    positions = np.flatnonzero(mask)
    out = []
    for name in names:
        column = relation.column(name)
        if column.ctype is ColumnType.STRING:
            values = column.data
            data = StringArray.from_pylist([values[int(i)] for i in positions])
        else:
            data = np.asarray(column.data)[positions]
        nulls = None
        if column.nulls is not None:
            null_mask = np.zeros(len(column), dtype=bool)
            null_mask[column.nulls.to_array()] = True
            kept = np.flatnonzero(null_mask[positions])
            if kept.size:
                nulls = RoaringBitmap.from_positions(kept)
        out.append(Column(name, column.ctype, data, nulls))
    return out


# -- predicate bank ------------------------------------------------------------


def _predicate_cases(relation: Relation) -> list:
    """(id, where) pairs covering every predicate type at several
    selectivities, derived from the data so they always straddle real
    values."""
    key = np.asarray(relation.column("key").data)
    price = np.asarray(relation.column("price").data)
    lo, mid, hi = (
        int(np.quantile(key, 0.02)),
        int(np.quantile(key, 0.5)),
        int(np.quantile(key, 0.98)),
    )
    return [
        ("equals-int", {"skew": Equals(7)}),
        ("equals-int-absent", {"key": Equals(-12345)}),
        ("equals-str", {"city": Equals("OSLO")}),
        ("equals-str-absent", {"city": Equals("ZANZIBAR")}),
        ("gt", {"key": GreaterThan(hi)}),
        ("gt-inclusive", {"key": GreaterThan(mid, inclusive=True)}),
        ("lt", {"key": LessThan(lo)}),
        ("lt-inclusive-double", {"price": LessThan(float(np.quantile(price, 0.1)), inclusive=True)}),
        ("between-narrow", {"key": Between(lo, lo + 50)}),
        ("between-all", {"key": Between(int(key.min()), int(key.max()))}),
        ("between-empty", {"key": Between(hi + 10_000, hi + 20_000)}),
        ("between-str", {"city": Between("A", "P")}),
        ("in-int", {"skew": In([7, 11, 999999])}),
        ("in-str", {"city": In(["PARIS", "BERGEN", "NOWHERE"])}),
        ("in-empty", {"key": In([])}),
        ("isnull", {"key": IsNull()}),
        ("isnull-str", {"city": IsNull()}),
        ("conjunction", {"key": Between(lo, hi), "city": Equals("ROME"), "skew": Equals(7)}),
        ("conjunction-null", {"price": GreaterThan(100.0), "city": IsNull()}),
    ]


def _assert_scan_equal(got: Relation, relation: Relation, names, mask, context: str):
    expected = _filter_relation(relation, list(names), mask)
    assert len(got.columns) == len(expected), context
    for mine, theirs in zip(got.columns, expected):
        assert columns_equal(mine, theirs), (
            f"{context}: column {theirs.name!r} diverged from the NumPy oracle"
        )


NULL_LAYOUTS = ["none", "sparse", "dense", "blocky"]
SEEDS = [101, 202]


@pytest.mark.parametrize("null_layout", NULL_LAYOUTS)
@pytest.mark.parametrize("seed", SEEDS)
class TestEquivalence:
    """One committed table per (seed, layout); every predicate case runs
    against all four execution surfaces inside the test to amortise setup."""

    _cache: dict = {}

    @pytest.fixture()
    def setup(self, seed, null_layout):
        # One compression + commit per (seed, layout); the four surface
        # tests only ever read from the stores, so sharing is safe.
        key = (seed, null_layout)
        if key not in self._cache:
            relation = _make_relation(seed, null_layout)
            config = BtrBlocksConfig(block_size=BLOCK)
            compressed = compress_relation(relation, config)
            store = SimulatedObjectStore()
            TableWriter(store).write(compressed)
            legacy_store = SimulatedObjectStore()
            upload_btrblocks(legacy_store, compressed)
            self._cache[key] = (relation, config, compressed, store, legacy_store)
        return self._cache[key]

    def test_local_scan_matches_oracle(self, setup):
        relation, config, _, _, _ = setup
        table = CompressedTable.from_relation(relation, config)
        names = [c.name for c in relation.columns]
        for case_id, where in _predicate_cases(relation):
            mask = _oracle_mask(relation, where)
            got = table.scan(columns=names, where=where)
            _assert_scan_equal(got, relation, names, mask, f"local/{case_id}")
            assert table.count(where) == int(mask.sum()), f"local/{case_id}"

    def test_remote_scan_matches_oracle(self, setup):
        relation, _, _, store, _ = setup
        names = [c.name for c in relation.columns]
        for case_id, where in _predicate_cases(relation):
            mask = _oracle_mask(relation, where)
            table = RemoteTable.open(store, relation.name)  # cold: no caches
            got = table.scan(columns=names, where=where)
            _assert_scan_equal(got, relation, names, mask, f"remote/{case_id}")

    def test_remote_pipelined_scan_matches_oracle(self, setup):
        relation, _, _, store, _ = setup
        names = [c.name for c in relation.columns]
        for case_id, where in _predicate_cases(relation):
            mask = _oracle_mask(relation, where)
            table = RemoteTable.open(store, relation.name)
            got, report = table.scan_pipelined(columns=names, where=where)
            assert report.wall_seconds >= 0.0
            _assert_scan_equal(got, relation, names, mask, f"pipelined/{case_id}")

    def test_legacy_layout_scan_matches_oracle(self, setup):
        relation, _, _, _, legacy_store = setup
        names = [c.name for c in relation.columns]
        for case_id, where in _predicate_cases(relation):
            mask = _oracle_mask(relation, where)
            table = RemoteTable.open(legacy_store, relation.name)
            got = table.scan(columns=names, where=where)
            _assert_scan_equal(got, relation, names, mask, f"legacy/{case_id}")


def test_pruned_scan_never_fetches_more_than_full():
    """The pruned path is a strict optimisation in bytes moved as well."""
    relation = _make_relation(7, "sparse")
    compressed = compress_relation(relation, BtrBlocksConfig(block_size=BLOCK))
    store = SimulatedObjectStore()
    TableWriter(store).write(compressed)

    table = RemoteTable.open(store, relation.name)
    store.stats.reset()
    table.scan(columns=["price"])
    full_bytes = store.stats.bytes_downloaded

    key = np.asarray(relation.column("key").data)
    where = {"key": Between(int(key[0]), int(key[ROWS // 100]))}
    table = RemoteTable.open(store, relation.name)
    store.stats.reset()
    table.scan(columns=["price"], where=where)
    assert 0 < store.stats.bytes_downloaded <= full_bytes


def test_stats_disabled_still_equivalent():
    """collect_stats=False tables answer identically — just without pruning."""
    relation = _make_relation(11, "sparse")
    config = BtrBlocksConfig(block_size=BLOCK, collect_stats=False)
    compressed = compress_relation(relation, config)
    store = SimulatedObjectStore()
    TableWriter(store).write(compressed)
    table = RemoteTable.open(store, relation.name)
    names = [c.name for c in relation.columns]
    for case_id, where in _predicate_cases(relation):
        mask = _oracle_mask(relation, where)
        got = table.scan(columns=names, where=where)
        _assert_scan_equal(got, relation, names, mask, f"stats-less/{case_id}")
