"""Selective-scan acceptance: bytes moved must scale with selectivity.

The zone-map pushdown exists for exactly one measurable reason — a 1%
query over clustered data should move a small fraction of the bytes a
full scan moves, because whole blocks (and their GETs) are pruned from
the manifest before any data is requested. This runs the same sweep as
``repro bench --selective-scan`` at test size and gates the ratio.
"""

from __future__ import annotations

import numpy as np

from repro.bench import bench_selective_scan
from repro.cloud import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable, TableWriter
from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.relation import Relation
from repro.query.predicates import Between
from repro.types import Column


def test_selectivity_sweep_bytes_scale():
    report = bench_selective_scan(rows=40_000, seed=7, block_size=2000)
    sweep = report["sweep"]
    assert set(sweep) == {"1%", "10%", "50%", "100%"}
    full = sweep["100%"]
    assert full["rows_returned"] == 40_000
    # The acceptance bar: a 1% query moves < 25% of the full scan's bytes.
    assert sweep["1%"]["bytes_fetched"] < 0.25 * full["bytes_fetched"], (
        f"1% selectivity fetched {sweep['1%']['bytes_fetched']} of "
        f"{full['bytes_fetched']} bytes — pruning is not engaging"
    )
    # Bytes grow monotonically with selectivity on clustered data.
    ordered = [sweep[k]["bytes_fetched"] for k in ("1%", "10%", "50%", "100%")]
    assert ordered == sorted(ordered)
    # Narrow queries also prune whole blocks, not just bytes.
    assert sweep["1%"]["pruned_blocks"] > 0
    assert sweep["1%"]["pruned_bytes"] > 0
    for point in sweep.values():
        assert point["decode_s"] >= 0.0
        assert point["get_requests"] >= 1


def test_sweep_rows_match_selectivity():
    report = bench_selective_scan(rows=20_000, seed=11, block_size=1000)
    sweep = report["sweep"]
    for label, fraction in (("1%", 0.01), ("10%", 0.10), ("50%", 0.50)):
        returned = sweep[label]["rows_returned"]
        # Duplicated keys at the range boundary blur the edge a little.
        assert 0 < returned <= 20_000
        assert abs(returned - 20_000 * fraction) < 20_000 * 0.05, label


def test_point_query_fetches_few_blocks():
    """Single-value lookup on a clustered key: the purest pruning win."""
    rows = 30_000
    keys = np.arange(rows, dtype=np.int32)
    relation = Relation(
        "points",
        [
            Column.ints("k", keys),
            Column.doubles("v", np.linspace(0.0, 1.0, rows)),
        ],
    )
    store = SimulatedObjectStore()
    TableWriter(store).write(
        compress_relation(relation, BtrBlocksConfig(block_size=1000))
    )
    table = RemoteTable.open(store, "points")
    store.stats.reset()
    result = table.scan(columns=["v"], where={"k": Between(15_000, 15_010)})
    assert len(result.columns[0]) == 11
    full = store.object_size(table.column_entry("k")["file"]) + store.object_size(
        table.column_entry("v")["file"]
    )
    assert store.stats.bytes_downloaded < 0.25 * full
