"""Seeded property-style round-trip fuzzing for every registered encoding.

For each data type we generate ~50 adversarial value sequences from a fixed
seed -- empty, single value, all-NULL, alternating, extreme magnitudes,
NaN/±inf/-0.0 for floats -- and assert that ``decompress(compress(x))``
reproduces the input *exactly* (bit patterns for doubles).

Four layers are fuzzed:

1. the full pipeline (``compress_block`` / ``decompress_block``), where the
   sampling-based selector is free to pick any cascade;
2. every scheme directly (selector bypassed), so a scheme cannot hide behind
   viability filters that would normally steer hostile inputs away from it;
3. the standalone float codecs (FPC, Gorilla, Chimp, Chimp128);
4. the checksummed (v2) column container and the fault-injecting object
   store: every adversarial input survives serialization, and scans through
   a store injecting transient errors, timeouts, throttles, truncated
   ranges and bit flips return bytes *bit-identical* to a fault-free store
   (retry-then-succeed), while unretryable stores fail with a typed error
   (retries-exhausted). ``REPRO_FAULT_SEED`` overrides the fault seed.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_block, compress_column, make_context
from repro.core.decompressor import (
    decompress_block,
    decompress_column,
    make_context as decode_context,
)
from repro.core.selector import SchemeSelector
from repro.encodings.base import SchemeId, get_scheme
from repro.floats import chimp, fpc, gorilla
from repro.types import Column, ColumnType, StringArray, columns_equal

SEED = 0xB7B10C5


# -- adversarial input generators ---------------------------------------------


def int_cases() -> list[tuple[str, np.ndarray]]:
    rng = np.random.default_rng(SEED)
    i32 = np.int32
    cases: list[tuple[str, np.ndarray]] = [
        ("empty", np.empty(0, dtype=i32)),
        ("single_zero", np.zeros(1, dtype=i32)),
        ("single_max", np.array([2**31 - 1], dtype=i32)),
        ("single_min", np.array([-(2**31)], dtype=i32)),
        ("all_zero", np.zeros(777, dtype=i32)),
        ("all_max", np.full(512, 2**31 - 1, dtype=i32)),
        ("all_min", np.full(512, -(2**31), dtype=i32)),
        ("alternating_01", np.tile(np.array([0, 1], dtype=i32), 500)),
        ("alternating_extremes", np.tile(np.array([2**31 - 1, -(2**31)], dtype=i32), 300)),
        ("ascending", np.arange(1000, dtype=i32)),
        ("descending", np.arange(1000, 0, -1).astype(i32)),
        ("two_then_spike", np.r_[np.full(999, 2, dtype=i32), np.array([2**30], dtype=i32)]),
        ("negatives", -np.arange(1, 600, dtype=i32)),
        ("powers_of_two", (2 ** np.arange(31, dtype=np.int64) % (2**31)).astype(i32)),
    ]
    for i in range(12):
        cases.append((f"uniform_{i}", rng.integers(-(2**31), 2**31, 257 + i, dtype=np.int64).astype(i32)))
    for i in range(8):
        runs = np.repeat(rng.integers(-50, 50, 20 + i), rng.integers(1, 60))
        cases.append((f"runs_{i}", runs.astype(i32)))
    for i in range(8):
        base = rng.integers(0, 2**20)
        cases.append((f"clustered_{i}", (base + rng.integers(0, 17, 400 + i)).astype(i32)))
    for i in range(8):
        sparse = np.where(rng.random(333) < 0.02, rng.integers(0, 2**30), 7)
        cases.append((f"sparse_outliers_{i}", sparse.astype(i32)))
    return cases


def double_cases() -> list[tuple[str, np.ndarray]]:
    rng = np.random.default_rng(SEED + 1)
    f64 = np.float64
    nan_payload = np.frombuffer(np.uint64(0x7FF8DEADBEEF0001).tobytes(), dtype=f64)[0]
    cases: list[tuple[str, np.ndarray]] = [
        ("empty", np.empty(0, dtype=f64)),
        ("single_nan", np.array([np.nan], dtype=f64)),
        ("single_neg_zero", np.array([-0.0], dtype=f64)),
        ("all_nan", np.full(321, np.nan, dtype=f64)),
        ("all_pos_inf", np.full(128, np.inf, dtype=f64)),
        ("all_neg_inf", np.full(128, -np.inf, dtype=f64)),
        ("nan_payload", np.full(64, nan_payload, dtype=f64)),
        ("mixed_specials", np.tile(np.array([np.nan, np.inf, -np.inf, -0.0, 0.0], dtype=f64), 100)),
        ("alternating_sign", np.tile(np.array([1.5, -1.5], dtype=f64), 400)),
        ("tiny_denormals", np.array([5e-324, 1e-320, -5e-324] * 50, dtype=f64)),
        ("huge_magnitudes", np.array([1e308, -1e308, 1.7976931348623157e308] * 40, dtype=f64)),
        ("ascending_ints", np.arange(1000, dtype=f64)),
        ("prices", np.round(rng.uniform(0.01, 9999.99, 800), 2)),
        ("single_price", np.array([19.99], dtype=f64)),
    ]
    for i in range(10):
        cases.append((f"uniform_{i}", rng.uniform(-1e6, 1e6, 211 + i)))
    for i in range(8):
        cases.append((f"decimals_{i}", np.round(rng.uniform(-1e4, 1e4, 300 + i), i % 5)))
    for i in range(8):
        bits = rng.integers(0, 2**64, 150 + i, dtype=np.uint64)
        cases.append((f"random_bits_{i}", bits.view(f64)))
    for i in range(6):
        vals = rng.uniform(0, 100, 400)
        vals[rng.random(400) < 0.1] = np.nan
        cases.append((f"nan_sprinkled_{i}", vals))
    return cases


def string_cases() -> list[tuple[str, StringArray]]:
    rng = np.random.default_rng(SEED + 2)
    mk = StringArray.from_pylist
    cases: list[tuple[str, StringArray]] = [
        ("empty", StringArray.empty(0)),
        ("one_empty_string", mk([""])),
        ("all_empty_strings", mk([""] * 400)),
        ("single", mk(["lonely"])),
        ("all_same", mk(["OSLO"] * 500)),
        ("alternating", mk(["a", "bb"] * 300)),
        ("unicode", mk(["héllo wörld", "日本語テキスト", "🚀🌑", "عربى"] * 60)),
        ("null_bytes", mk([b"\x00\x01\x02", b"\x00", b"\xff\xfe"] * 50)),
        ("long_strings", mk(["x" * 5000, "y" * 3000, "z" * 1])),
        ("urls", mk([f"https://example.com/item?id={i}&ref=home" for i in range(300)])),
        ("mixed_lengths", mk(["" if i % 7 == 0 else "v" * (i % 97) for i in range(500)])),
    ]
    alphabet = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz0123456789", dtype=np.uint8)
    for i in range(20):
        words = [
            bytes(alphabet[rng.integers(0, alphabet.size, rng.integers(0, 24))])
            for _ in range(120 + i)
        ]
        cases.append((f"random_words_{i}", mk(words)))
    for i in range(10):
        pool = [f"city_{k}" for k in range(rng.integers(1, 12))]
        cases.append((f"low_card_{i}", mk([pool[j % len(pool)] for j in range(250 + i)])))
    for i in range(10):
        raw = [bytes(rng.integers(0, 256, rng.integers(0, 40), dtype=np.uint8).tobytes())
               for _ in range(100 + i)]
        cases.append((f"random_bytes_{i}", mk(raw)))
    return cases


INT_CASES = int_cases()
DOUBLE_CASES = double_cases()
STRING_CASES = string_cases()


def assert_exact(ctype: ColumnType, original, restored) -> None:
    assert len(restored) == len(original)
    if ctype is ColumnType.DOUBLE:
        assert np.array_equal(
            np.asarray(original, dtype=np.float64).view(np.uint64),
            np.asarray(restored, dtype=np.float64).view(np.uint64),
        )
    elif ctype is ColumnType.INTEGER:
        assert np.array_equal(np.asarray(original), np.asarray(restored))
    else:
        assert original == restored


# -- layer 1: full pipeline ----------------------------------------------------


@pytest.mark.parametrize("name,values", INT_CASES, ids=[n for n, _ in INT_CASES])
def test_pipeline_int_round_trip(name, values):
    blob = compress_block(values, ColumnType.INTEGER)
    assert_exact(ColumnType.INTEGER, values, decompress_block(blob, ColumnType.INTEGER))


@pytest.mark.parametrize("name,values", DOUBLE_CASES, ids=[n for n, _ in DOUBLE_CASES])
def test_pipeline_double_round_trip(name, values):
    blob = compress_block(values, ColumnType.DOUBLE)
    assert_exact(ColumnType.DOUBLE, values, decompress_block(blob, ColumnType.DOUBLE))


@pytest.mark.parametrize("name,values", STRING_CASES, ids=[n for n, _ in STRING_CASES])
def test_pipeline_string_round_trip(name, values):
    blob = compress_block(values, ColumnType.STRING)
    assert_exact(ColumnType.STRING, values, decompress_block(blob, ColumnType.STRING))


def test_all_null_columns_round_trip():
    """All-NULL columns: data slots are zeros, the bitmap carries the truth."""
    n = 1234
    all_null = RoaringBitmap.from_positions(np.arange(n))
    for column in (
        Column.ints("i", np.zeros(n, dtype=np.int32), nulls=all_null),
        Column.doubles("d", np.zeros(n), nulls=all_null),
        Column.strings("s", StringArray.from_pylist([""] * n), nulls=all_null),
    ):
        back = decompress_column(compress_column(column))
        assert columns_equal(column, back)


# -- layer 2: every scheme directly -------------------------------------------


def scheme_round_trip(scheme, values, vectorized=True):
    selector = SchemeSelector()
    payload = scheme.compress(values, make_context(selector))
    return scheme.decompress(payload, len(values), decode_context(vectorized))


def _constant(values):
    """Adversarial input reshaped to the one distribution OneValue accepts."""
    return np.full(max(len(values), 1), values[0] if len(values) else values.dtype.type(0))


INT_SCHEMES = [
    SchemeId.RLE_INT,
    SchemeId.DICT_INT,
    SchemeId.FREQUENCY_INT,
    SchemeId.FAST_BP128,
    SchemeId.FAST_PFOR,
]
DOUBLE_SCHEMES = [
    SchemeId.RLE_DOUBLE,
    SchemeId.DICT_DOUBLE,
    SchemeId.FREQUENCY_DOUBLE,
    SchemeId.PSEUDODECIMAL,
]
STRING_SCHEMES = [SchemeId.DICT_STRING, SchemeId.FREQUENCY_STRING, SchemeId.FSST]


@pytest.mark.parametrize("scheme_id", INT_SCHEMES)
@pytest.mark.parametrize("name,values", INT_CASES, ids=[n for n, _ in INT_CASES])
def test_int_schemes_direct(scheme_id, name, values):
    if len(values) == 0:
        pytest.skip("selector never routes empty blocks to a scheme")
    scheme = get_scheme(scheme_id)
    out = scheme_round_trip(scheme, values)
    assert_exact(ColumnType.INTEGER, values, out)


@pytest.mark.parametrize("scheme_id", DOUBLE_SCHEMES)
@pytest.mark.parametrize("name,values", DOUBLE_CASES, ids=[n for n, _ in DOUBLE_CASES])
def test_double_schemes_direct(scheme_id, name, values):
    if len(values) == 0:
        pytest.skip("selector never routes empty blocks to a scheme")
    scheme = get_scheme(scheme_id)
    out = scheme_round_trip(scheme, np.asarray(values, dtype=np.float64))
    assert_exact(ColumnType.DOUBLE, values, out)


@pytest.mark.parametrize("scheme_id", STRING_SCHEMES)
@pytest.mark.parametrize("name,values", STRING_CASES, ids=[n for n, _ in STRING_CASES])
def test_string_schemes_direct(scheme_id, name, values):
    if len(values) == 0:
        pytest.skip("selector never routes empty blocks to a scheme")
    scheme = get_scheme(scheme_id)
    out = scheme_round_trip(scheme, values)
    assert_exact(ColumnType.STRING, values, out)


@pytest.mark.parametrize(
    "scheme_id,cases",
    [
        (SchemeId.ONE_VALUE_INT, INT_CASES),
        (SchemeId.ONE_VALUE_DOUBLE, DOUBLE_CASES),
    ],
    ids=["one_value_int", "one_value_double"],
)
def test_one_value_direct(scheme_id, cases):
    scheme = get_scheme(scheme_id)
    ctype = scheme.ctype
    for name, values in cases:
        if len(values) == 0:
            continue
        constant = _constant(values)
        out = scheme_round_trip(scheme, constant)
        assert_exact(ctype, constant, out)


def test_one_value_string_direct():
    scheme = get_scheme(SchemeId.ONE_VALUE_STRING)
    for name, values in STRING_CASES:
        if len(values) == 0:
            continue
        constant = StringArray.from_pylist([values[0]] * len(values))
        out = scheme_round_trip(scheme, constant)
        assert_exact(ColumnType.STRING, constant, out)


def test_scalar_decoders_match_vectorized():
    """The Section 6.8 scalar fallbacks must agree bit for bit."""
    for scheme_id, cases in [
        (SchemeId.RLE_INT, INT_CASES[:10]),
        (SchemeId.DICT_INT, INT_CASES[:10]),
        (SchemeId.DICT_STRING, STRING_CASES[:8]),
    ]:
        scheme = get_scheme(scheme_id)
        ctype = scheme.ctype
        for name, values in cases:
            if len(values) == 0:
                continue
            out = scheme_round_trip(scheme, values, vectorized=False)
            assert_exact(ctype, values, out)


# -- layer 3: standalone float codecs -----------------------------------------

FLOAT_CODECS = [
    ("fpc", fpc.compress, fpc.decompress),
    ("gorilla", gorilla.compress, gorilla.decompress),
    ("chimp", chimp.compress, chimp.decompress),
    ("chimp128", chimp.compress128, chimp.decompress128),
]


@pytest.mark.parametrize("codec,compress,decompress", FLOAT_CODECS,
                         ids=[c[0] for c in FLOAT_CODECS])
@pytest.mark.parametrize("name,values", DOUBLE_CASES, ids=[n for n, _ in DOUBLE_CASES])
def test_float_codecs_round_trip(codec, compress, decompress, name, values):
    values = np.asarray(values, dtype=np.float64)
    out = decompress(compress(values), len(values))
    assert_exact(ColumnType.DOUBLE, values, out)


# -- layer 4: checksummed container + fault-injecting store --------------------

from repro.cloud import FaultProfile, RetryPolicy, SimulatedObjectStore  # noqa: E402
from repro.cloud.pricing import PricingModel  # noqa: E402
from repro.cloud.remote_table import RemoteTable  # noqa: E402
from repro.cloud.scan import scan_btrblocks_columns  # noqa: E402
from repro.core.compressor import compress_relation  # noqa: E402
from repro.core.file_format import column_from_bytes, column_to_bytes, relation_to_files  # noqa: E402
from repro.core.relation import Relation  # noqa: E402
from repro.exceptions import RetryExhaustedError  # noqa: E402

#: Deterministic default; CI's fault-matrix job also feeds one randomized
#: seed through this knob (probabilistic assertions are gated on it below).
FAULT_SEED = int(os.environ.get("REPRO_FAULT_SEED", str(SEED)), 0)
_DEFAULT_SEED = "REPRO_FAULT_SEED" not in os.environ

#: Tiny chunks so even the small fuzz columns take many range-GETs — enough
#: requests that per-request fault rates are virtually certain to fire.
_SMALL_CHUNKS = PricingModel(chunk_bytes=128)


def _container_cases():
    sampled = (
        [(ColumnType.INTEGER, n, v) for n, v in INT_CASES]
        + [(ColumnType.DOUBLE, n, v) for n, v in DOUBLE_CASES]
        + [(ColumnType.STRING, n, v) for n, v in STRING_CASES]
    )
    return sampled


_CONTAINER_CASES = _container_cases()


@pytest.mark.parametrize(
    "ctype,name,values",
    _CONTAINER_CASES,
    ids=[f"{c.name.lower()}_{n}" for c, n, _ in _CONTAINER_CASES],
)
def test_v2_container_round_trip(ctype, name, values):
    """Every adversarial input survives the checksummed file format."""
    if ctype is ColumnType.INTEGER:
        column = Column.ints("c", values)
    elif ctype is ColumnType.DOUBLE:
        column = Column.doubles("c", np.asarray(values, dtype=np.float64))
    else:
        column = Column.strings("c", values)
    restored = column_from_bytes(column_to_bytes(compress_column(column)))
    assert all(block.checksum is not None for block in restored.blocks)
    back = decompress_column(restored)
    assert columns_equal(column, back)


def _fuzz_relation() -> Relation:
    rng = np.random.default_rng(SEED + 3)
    n = 4096
    null_rows = np.flatnonzero(rng.random(n) < 0.05)
    return Relation(
        "fuzz",
        [
            Column.ints("ids", rng.integers(0, 2**20, n).astype(np.int32)),
            Column.doubles("price", np.round(rng.uniform(0, 1e4, n), 2)),
            Column.strings(
                "city",
                StringArray.from_pylist([f"city_{i % 13}" for i in range(n)]),
                nulls=RoaringBitmap.from_positions(null_rows),
            ),
        ],
    )


@pytest.fixture(scope="module")
def fuzz_files() -> dict[str, bytes]:
    return relation_to_files(compress_relation(_fuzz_relation()))


def test_faulty_scan_bit_identical_to_fault_free(fuzz_files):
    """The PR's acceptance criterion: 5% transient errors + 1% truncated
    ranges, and the retried scan still returns the exact fault-free bytes."""
    clean = SimulatedObjectStore(pricing=_SMALL_CHUNKS)
    clean.put_many(fuzz_files)
    faulty = SimulatedObjectStore(
        pricing=_SMALL_CHUNKS,
        faults=FaultProfile(
            seed=FAULT_SEED, transient_error_rate=0.05, truncate_rate=0.01
        ),
        retry=RetryPolicy(max_attempts=10),
    )
    faulty.put_many(fuzz_files)

    want = scan_btrblocks_columns(clean, "fuzz", [0, 1, 2], keep_payloads=True)
    got = scan_btrblocks_columns(faulty, "fuzz", [0, 1, 2], keep_payloads=True)

    assert got.payloads == want.payloads
    for filename, payload in got.payloads.items():
        assert payload == fuzz_files[filename]
    assert want.retries == 0 and want.backoff_seconds == 0.0
    if _DEFAULT_SEED:
        # ~1200 range-GETs at >=6% combined fault rate: the deterministic
        # seed exercises the retry-then-succeed path, and backoff shows up
        # as simulated (never slept) scan time.
        assert got.retries > 0
        assert got.backoff_seconds > 0.0
        assert faulty.clock.now_seconds > 0.0
        assert got.requests > want.requests  # truncated attempts are billed


def test_faulty_remote_scan_decodes_identically(fuzz_files):
    """All five fault classes at once — including bit flips that only the
    v2 checksums can catch — and a RemoteTable scan still decodes every
    column bit-identically via verify-then-refetch."""
    profile = FaultProfile(
        seed=FAULT_SEED ^ 0xFA17,
        transient_error_rate=0.05,
        timeout_rate=0.02,
        throttle_rate=0.02,
        truncate_rate=0.01,
        corrupt_rate=0.005,
    )
    store = SimulatedObjectStore(
        pricing=_SMALL_CHUNKS, faults=profile, retry=RetryPolicy(max_attempts=10)
    )
    store.put_many(fuzz_files)
    # Metadata integrity is out of scope here (it is JSON, not checksummed):
    # hand the table known-good metadata so the run exercises the column
    # path, where CRC32 + refetch is the contract under test.
    metadata = json.loads(fuzz_files["fuzz/table.meta"])
    table = RemoteTable(store, "fuzz", metadata)
    result = table.scan()
    for original, restored in zip(_fuzz_relation().columns, result.columns):
        assert columns_equal(original, restored)


def test_retries_exhausted_raises_typed_error():
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=FAULT_SEED, transient_error_rate=1.0),
        retry=RetryPolicy(max_attempts=3),
    )
    store.put("k", b"payload")
    with pytest.raises(RetryExhaustedError):
        store.get("k")
    # Server-rejected attempts are never billed, but their backoff is real.
    assert store.stats.get_requests == 0
    assert store.stats.retries == 2  # 3 attempts = 2 retries
    assert store.stats.backoff_seconds > 0.0


def test_timeouts_burn_simulated_client_wait():
    policy = RetryPolicy(max_attempts=4, timeout_seconds=1.0)
    store = SimulatedObjectStore(
        faults=FaultProfile(seed=FAULT_SEED, timeout_rate=1.0), retry=policy
    )
    store.put("k", b"x" * 64)
    with pytest.raises(RetryExhaustedError):
        store.get("k")
    # Every one of the 4 attempts times out and burns the full client wait,
    # on top of the 3 backoff delays.
    assert store.clock.now_seconds >= 4 * policy.timeout_seconds
    assert store.stats.backoff_seconds >= 4 * policy.timeout_seconds


def test_fault_free_store_accounting_unchanged(fuzz_files):
    """A store with no profile attached serves byte- and request-identical
    to one with an all-zero profile: fault plumbing costs nothing."""
    plain = SimulatedObjectStore(pricing=_SMALL_CHUNKS)
    zeroed = SimulatedObjectStore(pricing=_SMALL_CHUNKS, faults=FaultProfile())
    plain.put_many(fuzz_files)
    zeroed.put_many(fuzz_files)
    a = scan_btrblocks_columns(plain, "fuzz", [0, 1, 2], keep_payloads=True)
    b = scan_btrblocks_columns(zeroed, "fuzz", [0, 1, 2], keep_payloads=True)
    assert a.payloads == b.payloads
    assert (a.requests, a.bytes_downloaded, a.retries) == (
        b.requests,
        b.bytes_downloaded,
        b.retries,
    )
