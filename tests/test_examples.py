"""Smoke tests: every example script must run end to end.

Each example executes in a subprocess so the custom scheme one cannot
pollute the in-process scheme registry used by other tests.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).parent.parent
EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def _child_env() -> dict:
    """The parent environment plus ``src/`` on PYTHONPATH.

    Starting from ``os.environ`` keeps PATH and interpreter-critical
    variables intact; prepending ``src/`` makes ``import repro`` resolve in
    the child no matter how the test process itself found the package.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = f"{src}{os.pathsep}{existing}" if existing else src
    env["REPRO_BENCH_ROWS"] = "4096"
    return env


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=_child_env(),
        cwd=script.parent.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their results"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "data_lake_scan.py",
            "float_compression.py", "custom_scheme.py"} <= names
