"""Smoke tests: every example script must run end to end.

Each example executes in a subprocess so the custom scheme one cannot
pollute the in-process scheme registry used by other tests.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
        env={"REPRO_BENCH_ROWS": "4096", "PATH": "/usr/bin:/bin"},
        cwd=script.parent.parent,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should print their results"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "data_lake_scan.py",
            "float_compression.py", "custom_scheme.py"} <= names
