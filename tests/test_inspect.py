"""Tests for cascade introspection (explain_block / explain_column)."""

import numpy as np
import pytest

from repro.core.compressor import compress_block, compress_column
from repro.core.config import BtrBlocksConfig
from repro.encodings.base import SchemeId
from repro.inspect import CascadeNode, explain_block, explain_column, format_tree
from repro.types import Column, ColumnType, StringArray


class TestExplainBlock:
    def test_uncompressed_leaf(self, rng):
        blob = compress_block(rng.standard_normal(100), ColumnType.DOUBLE)
        node = explain_block(blob, ColumnType.DOUBLE)
        assert node.scheme == "uncompressed"
        assert node.count == 100
        assert node.children == []

    def test_rle_has_two_children(self):
        values = np.repeat(np.arange(50, dtype=np.int32), 100)
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.RLE_INT, SchemeId.FAST_BP128, SchemeId.UNCOMPRESSED_INT,
        }))
        blob = compress_block(values, ColumnType.INTEGER, config)
        node = explain_block(blob, ColumnType.INTEGER)
        assert node.scheme == "rle"
        assert [label for label, _ in node.children] == ["values", "lengths"]

    def test_pseudodecimal_children(self, rng):
        values = np.round(rng.uniform(0, 1000, 10_000), 2)
        blob = compress_block(values, ColumnType.DOUBLE)
        node = explain_block(blob, ColumnType.DOUBLE)
        assert node.scheme == "pseudodecimal"
        assert [label for label, _ in node.children] == ["digits", "exponents"]
        assert node.depth() >= 2

    def test_string_dictionary_codes_child(self, rng):
        # Random (non-periodic) categorical strings: Dictionary wins, FSST
        # cannot exploit cross-string periodicity.
        pool = ["NORTH-EAST", "SOUTH-WEST", "CENTRAL-DISTRICT", "HARBOR"]
        sa = StringArray.from_pylist([pool[i] for i in rng.integers(0, 4, 5000)])
        blob = compress_block(sa, ColumnType.STRING)
        node = explain_block(blob, ColumnType.STRING)
        assert node.scheme == "dictionary"
        labels = [label for label, _ in node.children]
        assert "codes" in labels

    def test_fsst_pool_inside_string_dictionary(self, rng):
        from repro.core.config import BtrBlocksConfig

        # Repeated URLs: dictionary viable, and the pool's shared substrings
        # make FSST compression of the pool worthwhile.
        pool = [f"https://example.com/products/category-{i}/details" for i in range(200)]
        sa = StringArray.from_pylist([pool[i] for i in rng.integers(0, 200, 4000)])
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.DICT_STRING, SchemeId.FAST_BP128, SchemeId.RLE_INT,
            SchemeId.UNCOMPRESSED_STRING, SchemeId.UNCOMPRESSED_INT,
        }))
        blob = compress_block(sa, ColumnType.STRING, config)
        node = explain_block(blob, ColumnType.STRING)
        assert node.scheme == "dictionary"
        labels = dict(node.children)
        if "pool" in labels:  # FSST-compressed pool chosen
            assert labels["pool"].scheme == "fsst"

    def test_scheme_names_collects_cascade(self, rng):
        values = np.round(rng.uniform(0, 1000, 10_000), 2)
        blob = compress_block(values, ColumnType.DOUBLE)
        names = explain_block(blob, ColumnType.DOUBLE).scheme_names()
        assert "pseudodecimal" in names
        assert len(names) >= 2

    def test_sizes_sum_sensibly(self, rng):
        values = np.repeat(rng.integers(0, 20, 100), 50).astype(np.int32)
        blob = compress_block(values, ColumnType.INTEGER)
        node = explain_block(blob, ColumnType.INTEGER)
        child_bytes = sum(child.nbytes for _, child in node.children)
        assert child_bytes <= node.nbytes


class TestFormatTree:
    def test_renders_indented_lines(self):
        leaf = CascadeNode("fastbp128", ColumnType.INTEGER, 10, 100)
        root = CascadeNode("rle", ColumnType.INTEGER, 10, 300,
                           [("values", leaf), ("lengths", leaf)])
        text = format_tree(root)
        lines = text.splitlines()
        assert lines[0].startswith("rle[integer]")
        assert lines[1].strip().startswith("values: fastbp128")

    def test_explain_column(self):
        column = Column.ints("c", np.zeros(100, dtype=np.int32))
        compressed = compress_column(column)
        text = explain_column(compressed)
        assert "one_value" in text
