"""Tests for the proprietary column-store stand-ins (Figure 7 systems)."""

import numpy as np
import pytest

from repro.baselines.proprietary import (
    ALL_SYSTEMS,
    SYSTEM_A,
    SYSTEM_B,
    SYSTEM_C,
    SYSTEM_D,
)
from repro.core.relation import Relation
from repro.types import Column


@pytest.fixture
def relation(rng):
    return Relation("t", [
        Column.ints("runs", np.repeat(rng.integers(0, 30, 60), 50)),
        Column.doubles("prices", np.round(rng.uniform(0, 50, 3000), 2)),
        Column.strings("cat", [["alpha", "beta", "gamma"][i % 3] for i in range(3000)]),
    ])


class TestSystems:
    def test_four_systems(self):
        assert [s.label for s in ALL_SYSTEMS] == [
            "System A", "System B", "System C", "System D",
        ]

    def test_all_produce_positive_sizes(self, relation):
        for system in ALL_SYSTEMS:
            assert system.compressed_size(relation) > 0

    def test_a_is_weakest(self, relation):
        ratios = {s.label: s.ratio(relation) for s in ALL_SYSTEMS}
        assert ratios["System A"] == min(ratios.values())

    def test_richer_pools_do_not_lose(self, relation):
        # C's pool is a strict superset of B's (same depth), so C can only
        # match or beat B up to sampling noise.
        assert SYSTEM_C.ratio(relation) >= SYSTEM_B.ratio(relation) * 0.95

    def test_heavyweight_d_beats_lightweight_a(self, relation):
        assert SYSTEM_D.ratio(relation) > SYSTEM_A.ratio(relation)

    def test_pools_exclude_btrblocks_specific_schemes(self):
        from repro.encodings.base import SchemeId

        for system in ALL_SYSTEMS:
            pool = system.config.allowed_schemes
            assert SchemeId.PSEUDODECIMAL not in pool
            assert SchemeId.FSST not in pool

    def test_ratio_of_empty_relation(self):
        relation = Relation("t", [Column.ints("a", [])])
        assert SYSTEM_A.ratio(relation) >= 0
