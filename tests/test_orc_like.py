"""Tests for the ORC-like baseline format."""

import numpy as np
import pytest

from repro.baselines.orc_like import (
    DICTIONARY_KEY_SIZE_THRESHOLD,
    OrcLikeFormat,
    int_stream_decode,
    int_stream_encode,
)
from repro.bitmap import RoaringBitmap
from repro.core.relation import Relation
from repro.types import Column, columns_equal


class TestIntStream:
    def test_constant_run(self):
        values = np.full(10_000, 7, dtype=np.int64)
        blob = int_stream_encode(values)
        assert np.array_equal(int_stream_decode(blob, 10_000), values)
        assert len(blob) < 16

    def test_monotonic_sequence(self):
        values = np.arange(5000, dtype=np.int64) * 3 + 11
        blob = int_stream_encode(values)
        assert np.array_equal(int_stream_decode(blob, 5000), values)
        assert len(blob) < 16

    def test_random_uses_direct_mode(self, rng):
        values = rng.integers(0, 1000, 5000)
        blob = int_stream_encode(values)
        assert blob[0] == 1  # DIRECT
        assert np.array_equal(int_stream_decode(blob, 5000), values)
        assert len(blob) < 5000 * 2  # ~10 bits per value

    def test_run_heavy_uses_delta_mode(self):
        values = np.repeat(np.arange(10, dtype=np.int64), 500)
        blob = int_stream_encode(values)
        assert blob[0] == 0  # DELTA
        assert np.array_equal(int_stream_decode(blob, 5000), values)

    def test_negative_values(self):
        values = np.array([-5, -5, -5, 10, 11, 12, -100], dtype=np.int64)
        blob = int_stream_encode(values)
        assert np.array_equal(int_stream_decode(blob, 7), values)

    def test_empty(self):
        assert int_stream_decode(int_stream_encode(np.empty(0, dtype=np.int64)), 0).size == 0

    def test_single_value(self):
        blob = int_stream_encode(np.array([42]))
        assert int_stream_decode(blob, 1).tolist() == [42]

    def test_outliers_use_patched_base(self, rng):
        values = rng.integers(0, 64, 5000)
        values[rng.choice(5000, 40, replace=False)] = 2**40
        blob = int_stream_encode(values)
        assert blob[0] == 2  # PATCHED_BASE
        assert np.array_equal(int_stream_decode(blob, 5000), values)
        # Outliers must not inflate every lane: ~6 bits/value + patches.
        assert len(blob) < 5000 * 2

    def test_patched_base_beats_direct_on_outlier_data(self, rng):
        clean = rng.integers(0, 64, 5000)
        dirty = clean.copy()
        dirty[::200] = 2**40
        clean_blob = int_stream_encode(clean)
        dirty_blob = int_stream_encode(dirty)
        assert len(dirty_blob) < len(clean_blob) * 2


class TestFormat:
    @pytest.fixture
    def relation(self, rng):
        return Relation("t", [
            Column.ints("id", np.arange(2500)),
            Column.doubles("x", rng.standard_normal(2500)),
            Column.strings("cat", [["A", "B", "C"][i % 3] for i in range(2500)],
                           RoaringBitmap.from_positions([7])),
        ])

    @pytest.mark.parametrize("codec", ["none", "snappy", "zstd"])
    def test_round_trip(self, relation, codec):
        fmt = OrcLikeFormat(codec)
        back = fmt.decompress_relation(fmt.compress_relation(relation))
        for a, b in zip(relation.columns, back.columns):
            assert columns_equal(a, b)

    def test_stripes(self, relation):
        fmt = OrcLikeFormat("none", stripe_rows=1000)
        file = fmt.compress_relation(relation)
        assert len(file.stripes) == 3
        back = fmt.decompress_relation(file)
        for a, b in zip(relation.columns, back.columns):
            assert columns_equal(a, b)

    def test_dictionary_threshold_rule(self, rng):
        # Mostly-unique strings exceed the 0.8 threshold -> direct encoding.
        unique = Relation("u", [Column.strings("s", [f"row-{i}" for i in range(1000)])])
        repeated = Relation("r", [Column.strings("s", [f"v{i % 5}" for i in range(1000)])])
        fmt = OrcLikeFormat("none")
        unique_file = fmt.compress_relation(unique)
        repeated_file = fmt.compress_relation(repeated)
        # The dictionary case must compress far better.
        assert repeated_file.nbytes < unique_file.nbytes / 2
        for rel, file in ((unique, unique_file), (repeated, repeated_file)):
            back = fmt.decompress_relation(file)
            assert columns_equal(back.columns[0], rel.columns[0])

    def test_label(self):
        assert OrcLikeFormat("snappy").label == "orc+snappy"

    def test_orc_footer_larger_than_parquet(self, relation):
        from repro.baselines.parquet_like import ParquetLikeFormat

        orc = OrcLikeFormat("none").compress_relation(relation)
        parquet = ParquetLikeFormat("none").compress_relation(relation)
        orc_overhead = orc.FOOTER_BYTES_PER_COLUMN
        parquet_overhead = parquet.FOOTER_BYTES_PER_CHUNK
        assert orc_overhead > parquet_overhead
