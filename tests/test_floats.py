"""Tests for the double baselines: FPC, Gorilla, Chimp, Chimp128."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.floats import chimp, fpc, gorilla
from repro.floats.bitio import BitReader, BitWriter, leading_zeros64, trailing_zeros64

CODECS = [
    ("fpc", fpc.compress, fpc.decompress),
    ("gorilla", gorilla.compress, gorilla.decompress),
    ("chimp", chimp.compress, chimp.decompress),
    ("chimp128", chimp.compress128, chimp.decompress128),
]


class TestBitIO:
    def test_round_trip_mixed_widths(self):
        writer = BitWriter()
        writer.write(0b101, 3)
        writer.write(0xFFFF, 16)
        writer.write_bit(1)
        writer.write(0, 7)
        data = writer.getvalue()
        reader = BitReader(data)
        assert reader.read(3) == 0b101
        assert reader.read(16) == 0xFFFF
        assert reader.read_bit() == 1
        assert reader.read(7) == 0

    def test_write_masks_extra_bits(self):
        writer = BitWriter()
        writer.write(0b11111, 3)  # only low 3 bits kept
        assert BitReader(writer.getvalue()).read(3) == 0b111

    def test_read_past_end_raises(self):
        reader = BitReader(b"\x00")
        reader.read(8)
        with pytest.raises(EOFError):
            reader.read(1)

    def test_64bit_values(self):
        value = 0xDEADBEEFCAFEBABE
        writer = BitWriter()
        writer.write(value, 64)
        assert BitReader(writer.getvalue()).read(64) == value

    def test_leading_trailing_zeros(self):
        assert leading_zeros64(0) == 64
        assert leading_zeros64(1) == 63
        assert leading_zeros64(1 << 63) == 0
        assert trailing_zeros64(0) == 64
        assert trailing_zeros64(1) == 0
        assert trailing_zeros64(1 << 20) == 20


@pytest.mark.parametrize("name,compress,decompress", CODECS)
class TestRoundTrips:
    def test_empty(self, name, compress, decompress):
        out = decompress(compress(np.empty(0)), 0)
        assert out.size == 0

    def test_single_value(self, name, compress, decompress):
        values = np.array([3.25])
        out = decompress(compress(values), 1)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_constant_run(self, name, compress, decompress):
        values = np.full(500, 12.5)
        blob = compress(values)
        out = decompress(blob, 500)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))
        # Chimp128 spends a 7-bit window index per value even on constant
        # runs (the paper's Table 3 shows the same weakness vs Gorilla).
        limit = values.nbytes / (6 if name == "chimp128" else 10)
        assert len(blob) < limit

    def test_prices(self, name, compress, decompress, price_doubles):
        out = decompress(compress(price_doubles), len(price_doubles))
        assert np.array_equal(price_doubles.view(np.uint64), out.view(np.uint64))

    def test_random_noise(self, name, compress, decompress, rng):
        values = rng.standard_normal(1000)
        out = decompress(compress(values), 1000)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_special_values(self, name, compress, decompress):
        values = np.array([0.0, -0.0, np.nan, np.inf, -np.inf, 1e308, 5e-324] * 10)
        out = decompress(compress(values), len(values))
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_alternating_pair(self, name, compress, decompress):
        values = np.array([1.0, 2.0] * 200)
        out = decompress(compress(values), 400)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))


class TestCompressionBehaviour:
    def test_gorilla_wins_on_long_runs(self, rng):
        values = np.repeat(rng.uniform(0, 1, 20), 100)
        sizes = {n: len(c(values)) for n, c, _ in CODECS}
        assert sizes["gorilla"] < sizes["chimp128"]

    def test_chimp128_wins_on_repeating_window_values(self, rng):
        pool = np.round(rng.uniform(0, 1000, 50), 2)
        values = pool[rng.integers(0, 50, 4000)]
        sizes = {n: len(c(values)) for n, c, _ in CODECS}
        assert sizes["chimp128"] < sizes["gorilla"]

    def test_fpc_predicts_smooth_series(self):
        values = np.cumsum(np.full(2000, 0.125))
        assert len(fpc.compress(values)) < values.nbytes

    def test_fpc_table_bits_parameter(self, rng):
        values = rng.standard_normal(100)
        blob = fpc.compress(values, table_bits=8)
        out = fpc.decompress(blob, 100, table_bits=8)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_fpc_table_bits_must_match(self, rng):
        values = rng.uniform(0, 1, 100)
        blob = fpc.compress(values, table_bits=8)
        out = fpc.decompress(blob, 100, table_bits=8)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(allow_nan=True, allow_infinity=True, width=64), max_size=80))
@pytest.mark.parametrize("name,compress,decompress", CODECS)
def test_property_bitwise_lossless(name, compress, decompress, values):
    arr = np.array(values, dtype=np.float64)
    out = decompress(compress(arr), arr.size)
    assert np.array_equal(arr.view(np.uint64), out.view(np.uint64))
