"""Tests for the Parquet-like baseline format."""

import numpy as np
import pytest

from repro.baselines.parquet_like import (
    DICT_PAGE_LIMIT_BYTES,
    ParquetLikeFormat,
    hybrid_decode,
    hybrid_encode,
    plain_decode,
    plain_encode,
)
from repro.bitmap import RoaringBitmap
from repro.core.relation import Relation
from repro.types import Column, ColumnType, StringArray, columns_equal


class TestHybrid:
    def test_run_heavy(self):
        codes = np.repeat(np.arange(5), 100)
        blob = hybrid_encode(codes, bit_width=3)
        assert np.array_equal(hybrid_decode(blob, 500, 3), codes)
        assert len(blob) < 40

    def test_literal_heavy(self, rng):
        codes = rng.integers(0, 16, 1000)
        blob = hybrid_encode(codes, bit_width=4)
        assert np.array_equal(hybrid_decode(blob, 1000, 4), codes)
        assert len(blob) < 1000  # ~4 bits per value plus headers

    def test_mixed_runs_and_literals(self, rng):
        codes = np.concatenate([
            rng.integers(0, 4, 37),
            np.full(100, 2),
            rng.integers(0, 4, 13),
        ])
        blob = hybrid_encode(codes, bit_width=2)
        assert np.array_equal(hybrid_decode(blob, codes.size, 2), codes)

    def test_zero_bit_width(self):
        codes = np.zeros(100, dtype=np.int64)
        blob = hybrid_encode(codes, bit_width=0)
        assert np.array_equal(hybrid_decode(blob, 100, 0), codes)

    def test_empty(self):
        assert hybrid_decode(hybrid_encode(np.empty(0, dtype=np.int64), 4), 0, 4).size == 0

    def test_large_varint_run(self):
        codes = np.zeros(100_000, dtype=np.int64)
        blob = hybrid_encode(codes, bit_width=1)
        assert np.array_equal(hybrid_decode(blob, 100_000, 1), codes)
        assert len(blob) < 16


class TestPlain:
    def test_ints(self):
        values = np.array([1, -2, 3], dtype=np.int32)
        assert np.array_equal(
            plain_decode(plain_encode(values, ColumnType.INTEGER), 3, ColumnType.INTEGER),
            values,
        )

    def test_doubles_bitwise(self):
        values = np.array([np.nan, -0.0, 1.5])
        out = plain_decode(plain_encode(values, ColumnType.DOUBLE), 3, ColumnType.DOUBLE)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_strings_byte_array_layout(self):
        sa = StringArray.from_pylist(["ab", "", "xyz"])
        blob = plain_encode(sa, ColumnType.STRING)
        # BYTE_ARRAY: u32 length + payload per string.
        assert len(blob) == 12 + 5
        assert blob[:4] == (2).to_bytes(4, "little")
        out = plain_decode(blob, 3, ColumnType.STRING)
        assert out == sa

    def test_strings_empty(self):
        sa = StringArray.from_pylist([])
        out = plain_decode(plain_encode(sa, ColumnType.STRING), 0, ColumnType.STRING)
        assert len(out) == 0


class TestFormat:
    @pytest.fixture
    def relation(self, rng):
        return Relation("t", [
            Column.ints("id", np.arange(3000)),
            Column.ints("fk", rng.integers(0, 40, 3000)),
            Column.doubles("price", np.round(rng.uniform(0, 10, 3000), 2)),
            Column.strings("city", [["OSLO", "PARIS"][i % 2] for i in range(3000)],
                           RoaringBitmap.from_positions([0, 2999])),
        ])

    @pytest.mark.parametrize("codec", ["none", "snappy", "zstd"])
    def test_round_trip(self, relation, codec):
        fmt = ParquetLikeFormat(codec)
        back = fmt.decompress_relation(fmt.compress_relation(relation))
        for a, b in zip(relation.columns, back.columns):
            assert columns_equal(a, b)

    def test_label(self):
        assert ParquetLikeFormat("none").label == "parquet"
        assert ParquetLikeFormat("zstd").label == "parquet+zstd"

    def test_rowgroup_split(self, relation):
        fmt = ParquetLikeFormat("none", rowgroup_size=1000)
        file = fmt.compress_relation(relation)
        assert len(file.rowgroups) == 3
        back = fmt.decompress_relation(file)
        for a, b in zip(relation.columns, back.columns):
            assert columns_equal(a, b)

    def test_decompress_single_column(self, relation):
        fmt = ParquetLikeFormat("none", rowgroup_size=1000)
        file = fmt.compress_relation(relation)
        col = fmt.decompress_column(file, "price")
        assert columns_equal(col, relation.column("price"))
        with pytest.raises(KeyError):
            fmt.decompress_column(file, "missing")

    def test_dictionary_fallback_to_plain(self, rng):
        # Unique strings exceed the dictionary page limit -> PLAIN (the
        # hard-coded Arrow behaviour the paper criticises).
        strings = [f"unique-string-number-{i}-{'x' * 50}" for i in range(20_000)]
        assert sum(map(len, strings)) > DICT_PAGE_LIMIT_BYTES
        rel = Relation("t", [Column.strings("s", strings)])
        fmt = ParquetLikeFormat("none")
        file = fmt.compress_relation(rel)
        back = fmt.decompress_relation(file)
        assert columns_equal(back.columns[0], rel.columns[0])
        # no dictionary gain: compressed is not smaller than raw
        assert file.nbytes >= rel.nbytes * 0.95

    def test_compression_beats_raw_on_dict_data(self, relation):
        fmt = ParquetLikeFormat("none")
        file = fmt.compress_relation(relation)
        assert file.nbytes < relation.nbytes

    def test_footer_overhead_accounted(self, relation):
        fmt = ParquetLikeFormat("none")
        file = fmt.compress_relation(relation)
        raw = sum(rg.nbytes for rg in file.rowgroups)
        assert file.nbytes > raw

    def test_empty_relation(self):
        rel = Relation("t", [Column.ints("a", [])])
        fmt = ParquetLikeFormat("none")
        back = fmt.decompress_relation(fmt.compress_relation(rel))
        assert len(back.columns[0]) == 0
