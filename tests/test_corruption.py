"""Robustness tests: corrupted inputs must fail cleanly, never hang.

A storage library meets corrupted bytes in practice (truncated downloads,
bit rot). Decompression of damaged input is allowed to fail — but only with
a regular exception (ideally ``BtrBlocksError``), never a crash, an infinite
loop or silently wrong data passed off as success.
"""

import numpy as np
import pytest

from repro.baselines import lzb
from repro.core.compressor import compress_block
from repro.core.decompressor import decompress_block
from repro.core.file_format import column_from_bytes, relation_from_bytes
from repro.exceptions import BtrBlocksError
from repro.types import ColumnType, StringArray

ACCEPTABLE = (BtrBlocksError, ValueError, KeyError, IndexError, OverflowError, EOFError)


def _attempt(fn):
    """Run fn; pass when it succeeds or raises a regular exception."""
    try:
        fn()
    except ACCEPTABLE:
        pass


@pytest.fixture
def int_blob(rng):
    return compress_block(np.repeat(rng.integers(0, 30, 100), 20).astype(np.int32),
                          ColumnType.INTEGER)


@pytest.fixture
def string_blob():
    sa = StringArray.from_pylist([f"value-{i % 11}" for i in range(2000)])
    return compress_block(sa, ColumnType.STRING)


class TestTruncation:
    @pytest.mark.parametrize("keep", [0, 1, 4, 5, 9, 17, 33])
    def test_truncated_int_block(self, int_blob, keep):
        _attempt(lambda: decompress_block(int_blob[:keep], ColumnType.INTEGER))

    def test_truncated_string_block(self, string_blob):
        for keep in (3, 8, len(string_blob) // 2, len(string_blob) - 3):
            _attempt(lambda: decompress_block(string_blob[:keep], ColumnType.STRING))

    def test_empty_input(self):
        with pytest.raises(ACCEPTABLE):
            decompress_block(b"", ColumnType.INTEGER)


class TestBitFlips:
    def test_flipped_bytes_never_hang(self, int_blob, rng):
        for _ in range(50):
            corrupted = bytearray(int_blob)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 0xFF
            _attempt(lambda: decompress_block(bytes(corrupted), ColumnType.INTEGER))

    def test_flipped_scheme_id(self, int_blob):
        corrupted = bytes([200]) + int_blob[1:]
        with pytest.raises(ACCEPTABLE):
            decompress_block(corrupted, ColumnType.INTEGER)

    def test_string_blob_flips(self, string_blob, rng):
        for _ in range(50):
            corrupted = bytearray(string_blob)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= rng.integers(1, 255)
            _attempt(lambda: decompress_block(bytes(corrupted), ColumnType.STRING))


class TestContainers:
    def test_garbage_column_file(self, rng):
        with pytest.raises(ACCEPTABLE):
            column_from_bytes(rng.bytes(64))

    def test_garbage_relation_file(self, rng):
        with pytest.raises(ACCEPTABLE):
            relation_from_bytes(rng.bytes(128))

    def test_lzb_garbage(self, rng):
        for _ in range(30):
            _attempt(lambda: lzb.decompress(bytes([2]) + rng.bytes(40)))
