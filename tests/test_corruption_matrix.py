"""Corruption-matrix harness: every byte of every scheme's output, damaged.

For each registered scheme we round-trip a representative block through the
checksummed (v2) column container, then flip bytes across a sampled grid of
positions and decode. The contract is a strict trichotomy — the outcome of
decoding damaged input must be exactly one of:

1. a **clean typed error** (``BtrBlocksError`` or a regular builtin error),
2. **checksum detection** (``IntegrityError``, the common case: CRC32
   catches any single-byte flip in a block's ``data + nulls``), or
3. **correct data** — bit-identical decoded values, possible only when the
   flip landed in container metadata outside the checksummed payload (the
   magic-adjacent name bytes, say).

Never a hang, never a crash, and — the reason checksums exist — never
silently wrong values passed off as success.

Raw *node* bytes (no container, no checksum) keep the weaker historical
contract from the original ``test_corruption.py``, which this module
absorbs: damaged nodes may decode to wrong values, but must fail only with
regular exceptions and never hang.

Degrade modes (``on_corrupt="skip"|"null_block"``) are exercised per scheme
with a guaranteed payload hit.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest

from repro.baselines import lzb
from repro.bitmap import RoaringBitmap
from repro.core.blocks import CompressedBlock, CompressedColumn
from repro.core.compressor import compress_block, compress_column
from repro.core.compressor import make_context as compression_context
from repro.core.decompressor import decompress_block, decompress_column
from repro.core.file_format import column_from_bytes, column_to_bytes, relation_from_bytes
from repro.core.selector import SchemeSelector
from repro.core.relation import Relation  # noqa: F401  (imported for fixtures)
from repro.encodings.base import all_schemes
from repro.encodings.wire import wrap
from repro.exceptions import BtrBlocksError
from repro.types import Column, ColumnType, StringArray

#: Damage may surface as any *typed* error — library errors (including
#: IntegrityError) or the regular builtins a parser hits on garbage.
ACCEPTABLE = (
    BtrBlocksError,
    ValueError,
    KeyError,
    IndexError,
    OverflowError,
    EOFError,
    struct.error,
)

#: Deterministic default; CI's fault-matrix job also runs one randomized
#: seed (echoed in its log) through this knob.
MATRIX_SEED = int(os.environ.get("REPRO_FAULT_SEED", "192024773"), 0)


# -- representative inputs per scheme ------------------------------------------


def _i32(values) -> np.ndarray:
    return np.asarray(values, dtype=np.int32)


def _f64(values) -> np.ndarray:
    return np.asarray(values, dtype=np.float64)


_INT_INPUT = _i32([5, 900000, 5, 77] * 32 + list(range(1000, 1064)))
_DOUBLE_INPUT = _f64([1.25, 99.99, 0.01, 123.45] * 32)
_STRING_INPUT = StringArray.from_pylist(["OSLO", "ATHENS", "OSLO", "RALEIGH"] * 24)

#: Schemes that only accept constrained inputs.
_SPECIAL_INPUTS = {
    "one value int": _i32([42] * 100),
    "one value double": _f64([1.5] * 100),
    "one value string": StringArray.from_pylist(["same"] * 100),
    "rle int": _i32([1] * 30 + [2] * 50 + [3] * 20),
    "rle double": _f64([0.5] * 40 + [2.5] * 60),
    "frequency int": _i32([7] * 90 + [1, 2, 3, 4, 5, 6]),
    "frequency double": _f64([0.0] * 90 + [1.5, 2.5]),
    "frequency string": StringArray.from_pylist(["hot"] * 90 + ["a", "b", "c"]),
    "fsst": StringArray.from_pylist(
        [f"https://example.com/products/item?id={i % 7}" for i in range(96)]
    ),
}

_DEFAULT_INPUTS = {
    ColumnType.INTEGER: _INT_INPUT,
    ColumnType.DOUBLE: _DOUBLE_INPUT,
    ColumnType.STRING: _STRING_INPUT,
}


def scheme_input(scheme):
    return _SPECIAL_INPUTS.get(scheme.name, _DEFAULT_INPUTS[scheme.ctype])


def encode_scheme_container(scheme, values) -> bytes:
    """One block compressed by exactly this scheme, in a v2 column file."""
    selector = SchemeSelector(seed=7)
    payload = scheme.compress(values, compression_context(selector))
    node = wrap(scheme.scheme_id, len(values), payload)
    column = CompressedColumn("c", scheme.ctype)
    column.blocks.append(CompressedBlock(len(values), node))
    return column_to_bytes(column)


def values_equal(ctype: ColumnType, original, restored) -> bool:
    if len(restored) != len(original):
        return False
    if ctype is ColumnType.DOUBLE:
        return bool(
            np.array_equal(
                np.asarray(original, dtype=np.float64).view(np.uint64),
                np.asarray(restored, dtype=np.float64).view(np.uint64),
            )
        )
    if ctype is ColumnType.INTEGER:
        return bool(np.array_equal(np.asarray(original), np.asarray(restored)))
    return original == restored


def sampled_positions(length: int, rng: np.random.Generator, extra: int = 8) -> list[int]:
    """A grid over every container region plus a few random positions."""
    step = max(1, length // 40)
    grid = set(range(0, length, step))
    grid |= set(range(min(24, length)))  # dense over magic/type/name/headers
    grid |= {length - i for i in range(1, min(5, length) + 1)}
    grid |= {int(p) for p in rng.integers(0, length, extra)}
    return sorted(p for p in grid if 0 <= p < length)


def assert_trichotomy(blob: bytes, ctype: ColumnType, original, position: int, pattern: int):
    """Flip one byte; outcome must be typed-error, detection, or correct data."""
    damaged = bytearray(blob)
    damaged[position] ^= pattern
    if bytes(damaged) == blob:
        return
    try:
        column = column_from_bytes(bytes(damaged))
        out = decompress_column(column)  # on_corrupt="raise" -> IntegrityError
    except ACCEPTABLE:
        return
    assert values_equal(ctype, original, out.data), (
        f"byte {position} ^ {pattern:#x}: decode succeeded with WRONG values "
        f"(silent corruption — checksum failed to detect)"
    )


_SCHEMES = all_schemes()


@pytest.mark.parametrize("scheme", _SCHEMES, ids=[s.name.replace(" ", "_") for s in _SCHEMES])
def test_scheme_corruption_matrix(scheme):
    """Single-byte damage anywhere in a v2 container is never silent."""
    values = scheme_input(scheme)
    blob = encode_scheme_container(scheme, values)
    rng = np.random.default_rng(MATRIX_SEED ^ scheme.scheme_id)
    for position in sampled_positions(len(blob), rng):
        for pattern in (0xFF, 0x01):
            assert_trichotomy(blob, scheme.ctype, values, position, pattern)


@pytest.mark.parametrize("scheme", _SCHEMES, ids=[s.name.replace(" ", "_") for s in _SCHEMES])
def test_scheme_payload_hit_detected_and_degradable(scheme):
    """A flip inside the checksummed payload is detected, and the degrade
    modes turn it into dropped or NULLed rows instead of an error."""
    values = scheme_input(scheme)
    blob = encode_scheme_container(scheme, values)
    # v2 layout: 4 magic + 3 type/name-len + 1 name + 4 block_count
    # + 4 header CRC + 16 block header.
    data_start = 4 + 3 + 1 + 4 + 4 + 16
    damaged = bytearray(blob)
    damaged[data_start + (len(blob) - data_start) // 2] ^= 0x10
    column = column_from_bytes(bytes(damaged))

    from repro.exceptions import IntegrityError

    with pytest.raises(IntegrityError):
        decompress_column(column)
    skipped = decompress_column(column, on_corrupt="skip")
    assert len(skipped.data) == 0
    nulled = decompress_column(column, on_corrupt="null_block")
    assert len(nulled.data) == len(values)
    assert nulled.nulls is not None and len(nulled.nulls) == len(values)


@pytest.mark.parametrize(
    "ctype,values",
    [
        (ColumnType.INTEGER, _INT_INPUT),
        (ColumnType.DOUBLE, _DOUBLE_INPUT),
        (ColumnType.STRING, _STRING_INPUT),
    ],
    ids=["integer", "double", "string"],
)
def test_pipeline_column_corruption_matrix(ctype, values):
    """Same trichotomy for selector-chosen cascades, with NULLs in play."""
    nulls = RoaringBitmap.from_positions([1, 5, 17])
    if ctype is ColumnType.INTEGER:
        column = Column.ints("c", values, nulls=nulls)
    elif ctype is ColumnType.DOUBLE:
        column = Column.doubles("c", values, nulls=nulls)
    else:
        column = Column.strings("c", values, nulls=nulls)
    blob = column_to_bytes(compress_column(column))
    rng = np.random.default_rng(MATRIX_SEED ^ 0xC01)
    for position in sampled_positions(len(blob), rng):
        assert_trichotomy(blob, ctype, values, position, 0xFF)


# -- raw nodes (no container, no checksum): the historical weaker contract ----


@pytest.fixture
def int_blob(rng):
    return compress_block(
        np.repeat(rng.integers(0, 30, 100), 20).astype(np.int32), ColumnType.INTEGER
    )


@pytest.fixture
def string_blob():
    sa = StringArray.from_pylist([f"value-{i % 11}" for i in range(2000)])
    return compress_block(sa, ColumnType.STRING)


def _attempt(fn):
    """Run fn; pass when it succeeds or raises a regular exception."""
    try:
        fn()
    except ACCEPTABLE:
        pass


class TestNodeTruncation:
    @pytest.mark.parametrize("keep", [0, 1, 4, 5, 9, 17, 33])
    def test_truncated_int_block(self, int_blob, keep):
        _attempt(lambda: decompress_block(int_blob[:keep], ColumnType.INTEGER))

    def test_truncated_string_block(self, string_blob):
        for keep in (3, 8, len(string_blob) // 2, len(string_blob) - 3):
            _attempt(lambda: decompress_block(string_blob[:keep], ColumnType.STRING))

    def test_empty_input(self):
        with pytest.raises(ACCEPTABLE):
            decompress_block(b"", ColumnType.INTEGER)


class TestNodeBitFlips:
    def test_flipped_bytes_never_hang(self, int_blob, rng):
        for _ in range(50):
            corrupted = bytearray(int_blob)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= 0xFF
            _attempt(lambda: decompress_block(bytes(corrupted), ColumnType.INTEGER))

    def test_flipped_scheme_id(self, int_blob):
        corrupted = bytes([200]) + int_blob[1:]
        with pytest.raises(ACCEPTABLE):
            decompress_block(corrupted, ColumnType.INTEGER)

    def test_string_blob_flips(self, string_blob, rng):
        for _ in range(50):
            corrupted = bytearray(string_blob)
            pos = int(rng.integers(0, len(corrupted)))
            corrupted[pos] ^= rng.integers(1, 255)
            _attempt(lambda: decompress_block(bytes(corrupted), ColumnType.STRING))


class TestContainers:
    def test_garbage_column_file(self, rng):
        with pytest.raises(ACCEPTABLE):
            column_from_bytes(rng.bytes(64))

    def test_garbage_relation_file(self, rng):
        with pytest.raises(ACCEPTABLE):
            relation_from_bytes(rng.bytes(128))

    def test_truncated_column_file(self):
        blob = encode_scheme_container(_SCHEMES[0], scheme_input(_SCHEMES[0]))
        for keep in range(0, len(blob), max(1, len(blob) // 25)):
            _attempt(lambda: column_from_bytes(blob[:keep]))

    def test_lzb_garbage(self, rng):
        for _ in range(30):
            _attempt(lambda: lzb.decompress(bytes([2]) + rng.bytes(40)))


# -- persisted statistics (zone maps): damaged stats never change an answer ----
#
# Zone maps are pure pruning metadata, so they get a contract *stronger*
# than the trichotomy above: any damage to the statistics — footer byte
# flips, truncation, tampered or stale manifest entries — must either be
# rejected up front (``on_corrupt="raise"`` -> IntegrityError) or degrade
# to the full fetch-and-filter path and return exactly the clean answer.
# Wrong rows are never acceptable, because the data itself is intact.


def _stats_relation() -> "Relation":
    """Two same-shape int columns with disjoint value ranges per block, so
    stale statistics (one column's stats describing the other) both prune
    wrongly *and* leave overlap for a mid-range predicate to fetch through."""
    n = 4000
    forward = np.arange(n, dtype=np.int32)
    return Relation(
        "zm",
        [
            Column.ints("fwd", forward),
            Column.ints("rev", forward[::-1].copy()),
            Column.doubles("pay", np.round(np.linspace(0.0, 99.0, n), 2)),
        ],
    )


def _committed(relation):
    from repro.cloud import SimulatedObjectStore
    from repro.cloud.remote_table import TableWriter
    from repro.core.compressor import compress_relation
    from repro.core.config import BtrBlocksConfig

    store = SimulatedObjectStore()
    TableWriter(store).write(
        compress_relation(relation, BtrBlocksConfig(block_size=512))
    )
    return store


def _stats_column_blob():
    """A multi-block int column with its stats footer, plus the footer's
    byte offset inside the serialized file."""
    from repro.core.config import BtrBlocksConfig
    from repro.core.file_format import column_block_ranges

    column = compress_column(
        Column.ints("v", np.arange(2000, dtype=np.int32)),
        BtrBlocksConfig(block_size=512),
    )
    blob = column_to_bytes(column)
    offset, size = column_block_ranges(column)[-1]
    return column, blob, offset + size


class TestZoneMapCorruption:
    _shared: dict = {}

    def setup_method(self):
        from repro.query.predicates import Between

        if not self._shared:
            relation = _stats_relation()
            self._shared["relation"] = relation
            self._shared["clean"] = None
        self.relation = self._shared["relation"]
        self.where = {"fwd": Between(1900, 2100)}
        if self._shared["clean"] is None:
            self._shared["clean"] = self._scan(
                _committed(self.relation), "raise", where=self.where
            )
        self.clean_filtered = self._shared["clean"]

    @staticmethod
    def _scan(store, on_corrupt, where=None, registry=None):
        from repro.cloud.remote_table import RemoteTable
        from repro.observe import MetricsRegistry, use_registry

        registry = registry if registry is not None else MetricsRegistry()
        with use_registry(registry):
            table = RemoteTable.open(store, "zm", on_corrupt=on_corrupt)
            return table.scan(columns=["fwd", "pay"], where=where)

    def _scan_clean_equal(self, store, on_corrupt, registry=None):
        from repro.types import columns_equal

        got = self._scan(store, on_corrupt, where=self.where, registry=registry)
        for mine, theirs in zip(got.columns, self.clean_filtered.columns):
            assert columns_equal(mine, theirs)

    # -- the column-file footer ------------------------------------------------

    def test_footer_flip_matrix(self):
        """A flip anywhere in the trailing ZMAP section can at worst drop
        the statistics; decoded data must stay bit-identical, always."""
        column, blob, footer_start = _stats_column_blob()
        assert footer_start < len(blob), "fixture must carry a stats footer"
        clean = decompress_column(column_from_bytes(blob))
        rng = np.random.default_rng(MATRIX_SEED ^ 0x2AAF)
        positions = set(range(footer_start, min(footer_start + 32, len(blob))))
        positions |= {len(blob) - i for i in range(1, 6)}
        positions |= {int(p) for p in rng.integers(footer_start, len(blob), 16)}
        for position in sorted(positions):
            for pattern in (0xFF, 0x01):
                damaged = bytearray(blob)
                damaged[position] ^= pattern
                restored = column_from_bytes(bytes(damaged))
                out = decompress_column(restored)
                assert values_equal(ColumnType.INTEGER, clean.data, out.data), (
                    f"footer byte {position} ^ {pattern:#x} changed decoded data"
                )
                if restored.block_stats is not None and not restored.stats_invalid:
                    # CRC32 catches every single-byte flip, so surviving
                    # stats can only mean the flip landed in ignorable
                    # trailing garbage after a non-ZMAP magic.
                    assert [s.row_count for s in restored.block_stats] == [
                        b.count for b in column.blocks
                    ]

    def test_footer_truncation_matrix(self):
        column, blob, footer_start = _stats_column_blob()
        clean = decompress_column(column_from_bytes(blob))
        for keep in range(footer_start, len(blob), max(1, (len(blob) - footer_start) // 12)):
            restored = column_from_bytes(blob[:keep])
            out = decompress_column(restored)
            assert values_equal(ColumnType.INTEGER, clean.data, out.data)
            assert restored.block_stats is None

    # -- the manifest ----------------------------------------------------------

    def _tampered_store(self, mutate):
        """A committed table whose manifest was rewritten by ``mutate``."""
        import json

        from repro.cloud.remote_table import manifest_key

        store = _committed(self.relation)
        key = manifest_key("zm", 1)
        manifest = json.loads(store.get(key))
        mutate(manifest)
        store.put(key, json.dumps(manifest).encode("utf-8"))
        return store

    def test_flipped_manifest_stats_raise_or_degrade(self):
        """Edited stats entries fail the section CRC: ``raise`` refuses,
        lenient policies answer from the full fetch-and-filter path."""
        from repro.exceptions import IntegrityError
        from repro.observe import MetricsRegistry

        def mutate(manifest):
            entry = manifest["columns"][0]["stats"]["entries"][2]
            entry[2], entry[3] = 10**9, 2 * 10**9  # min/max now exclude all

        with pytest.raises(IntegrityError):
            self._scan(self._tampered_store(mutate), "raise", where=self.where)
        for policy in ("skip", "null_block"):
            registry = MetricsRegistry()
            self._scan_clean_equal(self._tampered_store(mutate), policy, registry)
            assert registry.get("cloud.scan.zonemap.invalid") >= 1

    def test_truncated_manifest_stats_raise_or_degrade(self):
        from repro.exceptions import IntegrityError
        from repro.observe import MetricsRegistry

        def drop_entry(manifest):
            del manifest["columns"][0]["stats"]["entries"][-1]

        def resigned_drop(manifest):
            # Re-sign the CRC so only the entry-count check can object.
            from repro.core.blockstats import _entries_crc

            section = manifest["columns"][0]["stats"]
            del section["entries"][-1]
            section["crc"] = _entries_crc(section["entries"])

        for mutate in (drop_entry, resigned_drop):
            with pytest.raises(IntegrityError):
                self._scan(self._tampered_store(mutate), "raise", where=self.where)
            registry = MetricsRegistry()
            self._scan_clean_equal(self._tampered_store(mutate), "skip", registry)
            assert registry.get("cloud.scan.zonemap.invalid") >= 1

    def test_implausible_block_ranges_raise_or_degrade(self):
        from repro.exceptions import IntegrityError
        from repro.observe import MetricsRegistry

        def mutate(manifest):
            manifest["columns"][0]["block_ranges"][1][1] = 10**9  # beyond file

        with pytest.raises(IntegrityError):
            self._scan(self._tampered_store(mutate), "raise", where=self.where)
        registry = MetricsRegistry()
        self._scan_clean_equal(self._tampered_store(mutate), "null_block", registry)
        assert registry.get("cloud.scan.zonemap.invalid") >= 1

    def test_stale_stats_caught_by_checksum_binding(self):
        """Statistics written for *different data* — internally consistent,
        CRC valid — are unmasked the moment any described block is fetched:
        its content CRC32 does not match the entry's binding. The scan falls
        back and answers from the real data."""
        from repro.observe import MetricsRegistry

        def swap_stats(manifest):
            cols = {c["name"]: c for c in manifest["columns"]}
            # fwd's blocks hold ascending ranges, rev's descending: rev's
            # stats over fwd mis-describe every block, but the mid-range
            # predicate still leaves the middle blocks unpruned.
            cols["fwd"]["stats"], cols["rev"]["stats"] = (
                cols["rev"]["stats"],
                cols["fwd"]["stats"],
            )

        registry = MetricsRegistry()
        self._scan_clean_equal(self._tampered_store(swap_stats), "skip", registry)
        assert registry.get("cloud.scan.zonemap.invalid") >= 1

    def test_missing_stats_is_not_an_error(self):
        """A manifest without statistics (older writer) is not damage: every
        policy answers identically, zero invalid-counter events."""
        from repro.observe import MetricsRegistry

        def strip(manifest):
            for column in manifest["columns"]:
                column.pop("stats", None)
                column.pop("block_ranges", None)

        for policy in ("raise", "skip", "null_block"):
            registry = MetricsRegistry()
            self._scan_clean_equal(self._tampered_store(strip), policy, registry)
            assert registry.get("cloud.scan.zonemap.invalid") == 0


# -- concurrent readers over shared caches ------------------------------------
#
# Serving multiplexes tenants with *different* degradation policies over one
# shared column cache and one shared decode cache. The contract extends the
# trichotomy across tenants: one tenant scanning damage under a lenient
# policy ("null_block"/"skip") gets degraded rows for itself, but nothing it
# pulled through the shared caches may ever surface as another tenant's
# *clean* data. A strict ("raise") tenant racing it sees either a typed
# error or bit-identical clean values — never the lenient tenant's nulls,
# never the damaged bytes.


def _served_store():
    """One committed table plus its pristine relation, small blocks."""
    from repro.cloud import SimulatedObjectStore
    from repro.cloud.remote_table import TableWriter
    from repro.core.compressor import compress_relation
    from repro.core.config import BtrBlocksConfig

    rng = np.random.default_rng(MATRIX_SEED)
    n = 1200
    relation = Relation(
        "shared",
        [
            Column.ints("code", rng.integers(0, 50, n).astype(np.int32)),
            Column.doubles("price", np.round(rng.random(n) * 100, 2)),
        ],
    )
    store = SimulatedObjectStore()
    TableWriter(store).write(
        compress_relation(relation, BtrBlocksConfig(block_size=256))
    )
    return store, relation


def _damage_column_object(store, table, column):
    """Flip one byte deep inside a column object *at rest* (every refetch
    sees the same damage, so retries cannot heal it). Returns an undo."""
    from repro.cloud.remote_table import RemoteTable

    entry = RemoteTable.open(store, table).column_entry(column)
    key = entry["file"]
    pristine = store._objects[key]
    position = len(pristine) // 2  # payload-ish; CRC32 catches any flip
    damaged = bytearray(pristine)
    damaged[position] ^= 0xFF
    store._objects[key] = bytes(damaged)

    def undo():
        store._objects[key] = pristine

    return undo


class TestConcurrentReadersShareCachesSafely:
    @pytest.mark.parametrize("lenient_mode", ["null_block", "skip"])
    def test_degraded_blocks_never_cross_tenants(self, lenient_mode):
        from repro.cloud.remote_table import RemoteTable
        from repro.cloud.retry import RetryPolicy
        from repro.core.cache import ByteBudgetLRU, DecodeCache
        from repro.observe import MetricsRegistry, use_registry
        from repro.types import columns_equal

        with use_registry(MetricsRegistry()):
            store, relation = _served_store()
            store.retry = RetryPolicy(max_attempts=2)
            column_cache = ByteBudgetLRU(1 << 24)
            decode_cache = DecodeCache(1 << 24)
            lenient = RemoteTable.open(
                store,
                "shared",
                on_corrupt=lenient_mode,
                column_cache=column_cache,
                decode_cache=decode_cache,
            )
            strict = RemoteTable.open(
                store,
                "shared",
                on_corrupt="raise",
                column_cache=column_cache,
                decode_cache=decode_cache,
            )
            undo = _damage_column_object(store, "shared", "code")

            # The lenient tenant scans the damage: degraded rows (or, for
            # flips outside any checksummed payload, a typed parse error) —
            # and primes the shared caches either way.
            try:
                degraded = lenient.scan(["code"]).column("code")
            except ACCEPTABLE:
                degraded = None
            if degraded is not None:
                assert not columns_equal(degraded, relation.column("code")), (
                    "a checksummed flip decoded bit-identically -- the "
                    "damage helper missed every payload"
                )

            # The strict tenant racing it: typed error or clean, never the
            # lenient tenant's degradation served as data.
            try:
                racing = strict.scan(["code"]).column("code")
            except ACCEPTABLE:
                racing = None
            if racing is not None:
                assert columns_equal(racing, relation.column("code"))

            # Repair the object. The strict tenant must now read pristine
            # values -- nothing damaged or degraded lingered in the shared
            # caches from the lenient tenant's scan.
            undo()
            healed = strict.scan(["code"]).column("code")
            assert columns_equal(healed, relation.column("code"))
            # And the lenient tenant heals too (its degraded column was
            # never cached, not even for itself).
            healed_lenient = lenient.scan(["code"]).column("code")
            assert columns_equal(healed_lenient, relation.column("code"))

    @pytest.mark.parametrize("lenient_mode", ["null_block", "skip"])
    def test_scan_server_isolates_degradation_between_tenants(self, lenient_mode):
        from repro.exceptions import BtrBlocksError
        from repro.observe import MetricsRegistry, use_registry
        from repro.serve import EventLoop, ScanRequest, ScanServer
        from repro.types import columns_equal

        with use_registry(MetricsRegistry()):
            store, relation = _served_store()
            loop = EventLoop(clock=store.clock)
            store.clock.reset()
            server = ScanServer(store, loop, max_concurrency=2, queue_limit=8)
            undo = _damage_column_object(store, "shared", "code")
            results: dict = {}

            async def tenant(name, on_corrupt):
                request = ScanRequest(
                    tenant=name,
                    table="shared",
                    columns=("code",),
                    on_corrupt=on_corrupt,
                )
                try:
                    response = await server.submit(request)
                    results[name] = response.relation.column("code")
                except (BtrBlocksError, *ACCEPTABLE):
                    results[name] = None

            loop.create_task(tenant("lenient", lenient_mode), "lenient")
            loop.create_task(tenant("strict", "raise"), "strict")
            loop.run()

            # Strict under damage: typed failure or bit-identical values.
            if results["strict"] is not None:
                assert columns_equal(results["strict"], relation.column("code"))

            # Repair, then re-read through the *same* server (same shared
            # caches): the strict tenant gets pristine data, proving the
            # lenient tenant's degraded blocks never entered the caches.
            undo()

            async def reread():
                response = await server.submit(
                    ScanRequest(
                        tenant="strict",
                        table="shared",
                        columns=("code", "price"),
                        on_corrupt="raise",
                    )
                )
                results["healed"] = response.relation

            loop.create_task(reread(), "reread")
            loop.run()

        healed = results["healed"]
        for name in ("code", "price"):
            assert columns_equal(healed.column(name), relation.column(name))
