"""Tests for lazily-fetched remote tables on the simulated object store."""

import numpy as np
import pytest

from repro.cloud import SimulatedObjectStore
from repro.cloud.remote_table import RemoteTable
from repro.cloud.scan import upload_btrblocks
from repro.core.compressor import compress_relation
from repro.core.relation import Relation
from repro.exceptions import FormatError
from repro.query import Between, Equals
from repro.types import Column


@pytest.fixture
def store_with_table(rng):
    relation = Relation("sales", [
        Column.ints("id", np.arange(4000)),
        Column.doubles("price", np.round(rng.uniform(0, 100, 4000), 2)),
        Column.strings("city", [["OSLO", "PARIS", "ROME"][i % 3] for i in range(4000)]),
    ])
    store = SimulatedObjectStore()
    upload_btrblocks(store, compress_relation(relation))
    return store, relation


class TestOpen:
    def test_open_reads_only_metadata(self, store_with_table):
        store, _ = store_with_table
        store.stats.reset()
        table = RemoteTable.open(store, "sales")
        assert store.stats.get_requests == 1
        assert table.column_names() == ["id", "price", "city"]
        assert table.row_count == 4000

    def test_unknown_column(self, store_with_table):
        store, _ = store_with_table
        table = RemoteTable.open(store, "sales")
        with pytest.raises(FormatError):
            table.column_entry("missing")


class TestLazyFetch:
    def test_scan_downloads_only_touched_columns(self, store_with_table):
        store, _ = store_with_table
        table = RemoteTable.open(store, "sales")
        store.stats.reset()
        table.scan(columns=["price"])
        price_bytes = store.object_size(table.column_entry("price")["file"])
        assert store.stats.bytes_downloaded == price_bytes

    def test_column_cached_after_first_fetch(self, store_with_table):
        store, _ = store_with_table
        table = RemoteTable.open(store, "sales")
        table.fetch_column("id")
        requests = store.stats.get_requests
        table.fetch_column("id")
        assert store.stats.get_requests == requests

    def test_filter_column_shared_with_projection(self, store_with_table):
        store, _ = store_with_table
        table = RemoteTable.open(store, "sales")
        store.stats.reset()
        table.scan(columns=["price"], where={"price": Between(10.0, 20.0)})
        # Only the price file was touched (filter and projection coincide);
        # with zone-map pruning the ranged GETs fetch at most the file.
        price_bytes = store.object_size(table.column_entry("price")["file"])
        assert 0 < store.stats.bytes_downloaded <= price_bytes


class TestQueryResults:
    def test_matches_local_oracle(self, store_with_table):
        store, relation = store_with_table
        table = RemoteTable.open(store, "sales")
        where = {"city": Equals("OSLO"), "id": Between(100, 2000)}
        remote = table.scan(columns=["id"], where=where)
        ids = np.asarray(relation.column("id").data)
        cities = relation.column("city").data.to_pylist()
        expected = [i for i in range(4000)
                    if cities[i] == b"OSLO" and 100 <= ids[i] <= 2000]
        assert remote.column("id").data.tolist() == expected

    def test_count(self, store_with_table):
        store, relation = store_with_table
        table = RemoteTable.open(store, "sales")
        assert table.count({"city": Equals("ROME")}) == sum(
            1 for v in relation.column("city").data.to_pylist() if v == b"ROME"
        )

    def test_full_scan_round_trips(self, store_with_table):
        store, relation = store_with_table
        table = RemoteTable.open(store, "sales")
        out = table.scan()
        assert out.row_count == relation.row_count
        assert np.array_equal(np.asarray(out.column("price").data),
                              np.asarray(relation.column("price").data))
