"""Tests for the LZB general-purpose codec and the codec registry."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import lzb
from repro.baselines.codecs import CODECS, get_codec
from repro.exceptions import CorruptBlockError


class TestLZB:
    @pytest.mark.parametrize("level", [1, 2, 9])
    def test_empty_input(self, level):
        assert lzb.decompress(lzb.compress(b"", level)) == b""

    @pytest.mark.parametrize("level", [1, 9])
    def test_short_input(self, level):
        data = b"hi"
        assert lzb.decompress(lzb.compress(data, level)) == data

    @pytest.mark.parametrize("level", [1, 9])
    def test_repetitive_text(self, level):
        data = b"compression " * 5000
        blob = lzb.compress(data, level)
        assert lzb.decompress(blob) == data
        assert len(blob) < len(data) / 20

    @pytest.mark.parametrize("level", [1, 9])
    def test_incompressible(self, level, rng):
        data = rng.bytes(10_000)
        blob = lzb.compress(data, level)
        assert lzb.decompress(blob) == data
        assert len(blob) < len(data) * 1.05  # bounded expansion

    def test_overlapping_matches(self):
        data = b"a" * 1000 + b"abcabcabc" * 100
        for level in (1, 9):
            assert lzb.decompress(lzb.compress(data, level)) == data

    def test_long_literal_runs(self, rng):
        # >15 literals forces extension bytes.
        data = rng.bytes(100) + b"X" * 50 + rng.bytes(300)
        assert lzb.decompress(lzb.compress(data, 1)) == data

    def test_long_matches_force_extension(self):
        data = b"Z" * 100_000
        blob = lzb.compress(data, 1)
        assert lzb.decompress(blob) == data
        assert len(blob) < 600

    def test_level9_never_much_worse_than_level1(self):
        samples = [
            b"".join(f"{i % 100},PHOENIX,{i * 0.25:.2f}\n".encode() for i in range(5000)),
            b"the quick brown fox " * 2000,
            bytes(range(256)) * 40,
        ]
        for data in samples:
            l1 = len(lzb.compress(data, 1))
            l9 = len(lzb.compress(data, 9))
            assert l9 <= l1 * 1.02

    def test_empty_stream_rejected(self):
        with pytest.raises(CorruptBlockError):
            lzb.decompress(b"")

    def test_bad_header_rejected(self):
        with pytest.raises(CorruptBlockError):
            lzb.decompress(b"\x07rest")


class TestCodecRegistry:
    def test_paper_codecs_present(self):
        assert {"none", "snappy", "lz4", "zstd", "bzip2"} <= set(CODECS)

    def test_unknown_codec_raises(self):
        with pytest.raises(KeyError):
            get_codec("brotli")

    @pytest.mark.parametrize("name", ["none", "snappy", "lz4", "zstd", "bzip2"])
    def test_round_trip(self, name, rng):
        codec = get_codec(name)
        data = b"columnar " * 2000 + rng.bytes(500)
        assert codec.decompress(codec.compress(data)) == data

    def test_zstd_like_out_compresses_snappy_like(self):
        data = b"".join(
            f"user-{i % 50},active,{i % 7},2026-07-{i % 28 + 1:02d}\n".encode()
            for i in range(20_000)
        )
        snappy_size = len(get_codec("snappy").compress(data))
        zstd_size = len(get_codec("zstd").compress(data))
        assert zstd_size <= snappy_size


@settings(max_examples=50, deadline=None)
@given(st.binary(max_size=2000), st.sampled_from([1, 9]))
def test_property_lzb_round_trip(data, level):
    assert lzb.decompress(lzb.compress(data, level)) == data


@settings(max_examples=20, deadline=None)
@given(st.lists(st.sampled_from([b"abc", b"de", b"\x00" * 8, b"longer-chunk"]), max_size=400))
def test_property_lzb_repetitive_round_trip(chunks):
    data = b"".join(chunks)
    assert lzb.decompress(lzb.compress(data, 9)) == data
