"""Tests for random (point) access into compressed columns."""

import numpy as np
import pytest

from repro.bitmap import RoaringBitmap
from repro.core.access import read_rows, read_value
from repro.core.compressor import compress_column
from repro.types import Column


@pytest.fixture
def int_column(rng, small_config):
    values = rng.integers(0, 1000, 3500).astype(np.int32)
    return values, compress_column(Column.ints("c", values), small_config)


class TestReadRows:
    def test_single_row(self, int_column):
        values, compressed = int_column
        out = read_rows(compressed, [1234])
        assert out.data.tolist() == [values[1234]]

    def test_rows_across_blocks(self, int_column):
        values, compressed = int_column
        picks = [0, 999, 1000, 2500, 3499]
        out = read_rows(compressed, picks)
        assert out.data.tolist() == [int(values[i]) for i in picks]

    def test_order_and_duplicates_preserved(self, int_column):
        values, compressed = int_column
        picks = [3000, 5, 3000, 5]
        out = read_rows(compressed, picks)
        assert out.data.tolist() == [int(values[i]) for i in picks]

    def test_out_of_range_raises(self, int_column):
        _, compressed = int_column
        with pytest.raises(IndexError):
            read_rows(compressed, [3500])
        with pytest.raises(IndexError):
            read_rows(compressed, [-1])

    def test_empty_request(self, int_column):
        _, compressed = int_column
        assert len(read_rows(compressed, [])) == 0

    def test_string_rows(self, small_config):
        values = [f"row-{i % 13}" for i in range(2500)]
        compressed = compress_column(Column.strings("s", values), small_config)
        out = read_rows(compressed, [7, 1300, 2499])
        assert out.data.to_pylist() == [b"row-7", b"row-0", b"row-3"]

    def test_double_rows_bitwise(self, rng, small_config):
        values = np.round(rng.uniform(0, 10, 1500), 2)
        values[42] = np.nan
        compressed = compress_column(Column.doubles("d", values), small_config)
        out = read_rows(compressed, [42, 43])
        assert np.array_equal(
            np.asarray(out.data).view(np.uint64), values[[42, 43]].view(np.uint64)
        )

    def test_null_rows_flagged(self, rng, small_config):
        column = Column.ints("c", rng.integers(0, 5, 2000),
                             RoaringBitmap.from_positions([1500]))
        compressed = compress_column(column, small_config)
        out = read_rows(compressed, [10, 1500])
        assert out.nulls.to_array().tolist() == [1]


class TestReadValue:
    def test_scalar_types(self, small_config, rng):
        ints = compress_column(Column.ints("i", np.arange(1200)), small_config)
        assert read_value(ints, 1100) == 1100
        strings = compress_column(Column.strings("s", ["a", "b"] * 600), small_config)
        assert read_value(strings, 1) == b"b"

    def test_null_returns_none(self, small_config):
        column = Column.ints("c", np.zeros(100, dtype=np.int32),
                             RoaringBitmap.from_positions([50]))
        compressed = compress_column(column, small_config)
        assert read_value(compressed, 50) is None
        assert read_value(compressed, 51) == 0
