"""Encoder fallback: a scheme failing mid-encode degrades one block.

A scheme that passed viability and sampling can still blow up against the
full block (sample-blind edge values, overflow in a child transform). The
compressor must fall back to ``Uncompressed`` for that block — sacrificing
ratio, never the column — count the event, flag it in the selection trace,
and evict any sticky-cache entry so the failing scheme is not handed to
the next block.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compressor import compress_block, compress_column, make_context
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_block, decompress_column
from repro.core.selector import SchemeSelector
from repro.encodings.base import get_scheme
from repro.encodings.uncompressed import UNCOMPRESSED_BY_TYPE
from repro.encodings.wire import unwrap
from repro.observe import (
    MetricsRegistry,
    SelectionTrace,
    use_registry,
    use_trace,
)
from repro.types import Column, ColumnType


@pytest.fixture
def registry():
    reg = MetricsRegistry()
    with use_registry(reg):
        yield reg


def pick_non_uncompressed_scheme(values, ctype, config=None):
    """The scheme a fresh selector would choose, asserted non-trivial."""
    selector = SchemeSelector(config)
    scheme = selector.pick(values, ctype, make_context(selector))
    assert scheme.scheme_id != UNCOMPRESSED_BY_TYPE[ctype].scheme_id
    return scheme


def failing(monkeypatch, scheme, full_size=4000,
            exc=ValueError("synthetic mid-encode failure")):
    """Make ``scheme.compress`` fail on full blocks but survive sampling.

    This is the real failure shape the fallback exists for: the scheme
    estimates fine on the sample, wins selection, then blows up against
    the complete block.
    """
    original = type(scheme).compress

    def patched(self, values, ctx):
        if len(values) >= full_size:
            raise exc
        return original(self, values, ctx)

    monkeypatch.setattr(type(scheme), "compress", patched)


REPEATED = np.asarray([7] * 4000, dtype=np.int32)  # RLE / one-value bait


class TestFallback:
    def test_block_falls_back_to_uncompressed(self, registry, monkeypatch):
        scheme = pick_non_uncompressed_scheme(REPEATED, ColumnType.INTEGER)
        failing(monkeypatch, scheme)
        blob = compress_block(REPEATED, ColumnType.INTEGER)
        scheme_id, count, _ = unwrap(blob)
        assert scheme_id == UNCOMPRESSED_BY_TYPE[ColumnType.INTEGER].scheme_id
        assert count == len(REPEATED)
        np.testing.assert_array_equal(
            decompress_block(blob, ColumnType.INTEGER), REPEATED
        )

    def test_fallback_counters(self, registry, monkeypatch):
        scheme = pick_non_uncompressed_scheme(REPEATED, ColumnType.INTEGER)
        failing(monkeypatch, scheme)
        compress_block(REPEATED, ColumnType.INTEGER)
        assert registry.get("compressor.fallback.total") == 1
        assert registry.get(f"compressor.fallback.{scheme.name}") == 1

    def test_trace_flags_fallback(self, registry, monkeypatch):
        scheme = pick_non_uncompressed_scheme(REPEATED, ColumnType.INTEGER)
        failing(monkeypatch, scheme)
        trace = SelectionTrace()
        with use_trace(trace):
            column = Column.ints("n", REPEATED)
            compress_column(column)
        flagged = [d for d in trace.decisions() if d.fallback]
        assert flagged
        for decision in flagged:
            assert decision.chosen == "uncompressed"
            assert decision.to_dict()["fallback"] is True

    def test_uncompressed_failure_is_not_swallowed(self, registry, monkeypatch):
        uncompressed = UNCOMPRESSED_BY_TYPE[ColumnType.INTEGER]
        err = RuntimeError("even the fallback failed")
        monkeypatch.setattr(
            type(uncompressed), "compress", lambda self, values, ctx: (_ for _ in ()).throw(err)
        )
        with pytest.raises(RuntimeError):
            compress_block(np.arange(10, dtype=np.int32), ColumnType.INTEGER)

    def test_sticky_cache_invalidated(self, registry, monkeypatch):
        # With sticky selection on, the full pick stores its winner in the
        # cache before compressing. When that winner then fails mid-encode,
        # the entry must be evicted so the *next* block re-selects rather
        # than sticky-hitting a scheme known to blow up.
        config = BtrBlocksConfig(block_size=1000, sticky_selection=True)
        column = Column.ints("n", REPEATED)  # 4 blocks of 1000
        scheme = pick_non_uncompressed_scheme(
            REPEATED[:1000], ColumnType.INTEGER, config
        )
        failing(monkeypatch, scheme, full_size=1000)
        compressed = compress_column(column, selector=SchemeSelector(config))
        assert registry.get("selector.sticky.invalidations") >= 1
        assert registry.get("selector.sticky.hits") == 0
        assert registry.get("compressor.fallback.total") >= 1
        # Every block degraded independently; the column still round-trips.
        decoded = decompress_column(compressed)
        np.testing.assert_array_equal(decoded.data, REPEATED)

    def test_fallback_column_round_trips_with_nulls(self, registry, monkeypatch):
        from repro.bitmap import RoaringBitmap

        scheme = pick_non_uncompressed_scheme(REPEATED, ColumnType.INTEGER)
        failing(monkeypatch, scheme)
        nulls = RoaringBitmap.from_positions(np.arange(0, 4000, 13))
        column = Column.ints("n", REPEATED, nulls=nulls)
        decoded = decompress_column(compress_column(column))
        np.testing.assert_array_equal(decoded.data, REPEATED)
        assert decoded.nulls is not None
        np.testing.assert_array_equal(
            decoded.nulls.to_array(), nulls.to_array()
        )
