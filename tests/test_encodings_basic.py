"""Tests for Uncompressed, One Value and RLE schemes."""

import numpy as np
import pytest

from repro.core.config import BtrBlocksConfig
from repro.core.stats import compute_stats
from repro.encodings import onevalue, rle, uncompressed
from repro.encodings.base import SchemeId, get_scheme
from repro.types import ColumnType, StringArray

from conftest import scheme_round_trip

CONFIG = BtrBlocksConfig()


class TestRegistry:
    def test_all_paper_schemes_registered(self):
        for scheme_id in [
            SchemeId.UNCOMPRESSED_INT, SchemeId.ONE_VALUE_DOUBLE, SchemeId.RLE_INT,
            SchemeId.DICT_STRING, SchemeId.FREQUENCY_DOUBLE, SchemeId.FAST_BP128,
            SchemeId.FAST_PFOR, SchemeId.FSST, SchemeId.PSEUDODECIMAL,
        ]:
            assert get_scheme(scheme_id) is not None

    def test_unknown_scheme_raises(self):
        from repro.exceptions import UnknownSchemeError

        with pytest.raises(UnknownSchemeError):
            get_scheme(200)


class TestUncompressed:
    def test_int_round_trip(self):
        values = np.array([1, -5, 2**31 - 1], dtype=np.int32)
        _, out = scheme_round_trip(uncompressed.INT, values)
        assert np.array_equal(out, values)

    def test_double_round_trip_preserves_bits(self):
        values = np.array([0.1, -0.0, np.nan, np.inf])
        _, out = scheme_round_trip(uncompressed.DOUBLE, values)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_string_round_trip(self):
        sa = StringArray.from_pylist(["a", "", "hello"])
        _, out = scheme_round_trip(uncompressed.STRING, sa)
        assert out == sa

    def test_empty_inputs(self):
        _, out = scheme_round_trip(uncompressed.INT, np.empty(0, dtype=np.int32))
        assert out.size == 0


class TestOneValue:
    def test_viability_requires_single_distinct(self):
        scheme = get_scheme(SchemeId.ONE_VALUE_INT)
        single = compute_stats(np.zeros(10, dtype=np.int32), ColumnType.INTEGER)
        multi = compute_stats(np.arange(10, dtype=np.int32), ColumnType.INTEGER)
        assert scheme.is_viable(single, CONFIG)
        assert not scheme.is_viable(multi, CONFIG)

    def test_int_round_trip(self):
        values = np.full(1000, -42, dtype=np.int32)
        payload, out = scheme_round_trip(get_scheme(SchemeId.ONE_VALUE_INT), values)
        assert np.array_equal(out, values)
        assert len(payload) < 16  # essentially one value

    def test_double_preserves_nan_payload(self):
        weird_nan = np.frombuffer(np.uint64(0x7FF80000DEADBEEF).tobytes(), dtype=np.float64)
        values = np.repeat(weird_nan, 100)
        _, out = scheme_round_trip(get_scheme(SchemeId.ONE_VALUE_DOUBLE), values)
        assert np.array_equal(values.view(np.uint64), out.view(np.uint64))

    def test_string_round_trip(self):
        sa = StringArray.from_pylist(["CABLE"] * 500)
        payload, out = scheme_round_trip(get_scheme(SchemeId.ONE_VALUE_STRING), sa)
        assert out == sa
        assert len(payload) < 32

    def test_empty_string_value(self):
        sa = StringArray.from_pylist([""] * 10)
        _, out = scheme_round_trip(get_scheme(SchemeId.ONE_VALUE_STRING), sa)
        assert out == sa


class TestSplitRuns:
    def test_basic(self):
        values, lengths = rle.split_runs(np.array([5, 5, 5, 2, 2, 9], dtype=np.int32))
        assert values.tolist() == [5, 2, 9]
        assert lengths.tolist() == [3, 2, 1]

    def test_empty(self):
        values, lengths = rle.split_runs(np.empty(0, dtype=np.int32))
        assert values.size == 0 and lengths.size == 0

    def test_single_run(self):
        values, lengths = rle.split_runs(np.zeros(100, dtype=np.int32))
        assert values.tolist() == [0]
        assert lengths.tolist() == [100]

    def test_nan_runs_group_bitwise(self):
        data = np.array([np.nan, np.nan, 1.0, np.nan])
        values, lengths = rle.split_runs(data)
        assert lengths.tolist() == [2, 1, 1]


class TestRLE:
    def test_viability_needs_runs(self):
        scheme = get_scheme(SchemeId.RLE_INT)
        runs = compute_stats(np.repeat(np.arange(5), 10).astype(np.int32), ColumnType.INTEGER)
        no_runs = compute_stats(np.arange(50, dtype=np.int32), ColumnType.INTEGER)
        assert scheme.is_viable(runs, CONFIG)
        assert not scheme.is_viable(no_runs, CONFIG)

    def test_int_round_trip(self, run_ints):
        _, out = scheme_round_trip(get_scheme(SchemeId.RLE_INT), run_ints)
        assert np.array_equal(out, run_ints)

    def test_double_round_trip(self):
        values = np.repeat(np.array([3.5, 18.0, 3.5]), [2, 2, 2])
        _, out = scheme_round_trip(get_scheme(SchemeId.RLE_DOUBLE), values)
        assert np.array_equal(out, values)

    def test_scalar_path_matches_vectorized(self, run_ints):
        scheme = get_scheme(SchemeId.RLE_INT)
        _, fast = scheme_round_trip(scheme, run_ints, vectorized=True)
        _, slow = scheme_round_trip(scheme, run_ints, vectorized=False)
        assert np.array_equal(fast, slow)

    def test_compresses_runs_well(self):
        values = np.repeat(np.arange(10), 1000).astype(np.int32)
        payload, _ = scheme_round_trip(get_scheme(SchemeId.RLE_INT), values)
        assert len(payload) < values.nbytes / 50

    def test_paper_example(self):
        # Section 3.2: [3.5, 3.5, 18, 18, 3.5, 3.5] -> values + lengths.
        values = np.array([3.5, 3.5, 18.0, 18.0, 3.5, 3.5])
        run_values, run_lengths = rle.split_runs(values)
        assert run_values.tolist() == [3.5, 18.0, 3.5]
        assert run_lengths.tolist() == [2, 2, 2]
