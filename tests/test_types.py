"""Tests for the typed columnar data model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RoaringBitmap
from repro.exceptions import TypeMismatchError
from repro.types import Column, ColumnType, StringArray, columns_equal


class TestStringArray:
    def test_from_pylist_and_back(self):
        values = ["hello", "world", "", "x"]
        sa = StringArray.from_pylist(values)
        assert sa.to_pylist() == [v.encode() for v in values]

    def test_none_becomes_empty(self):
        sa = StringArray.from_pylist(["a", None, "b"])
        assert sa[1] == b""

    def test_bytes_input(self):
        sa = StringArray.from_pylist([b"\xff\x00", b"ok"])
        assert sa[0] == b"\xff\x00"

    def test_unicode_round_trip(self):
        sa = StringArray.from_pylist(["Maceió", "São Luís", "日本語"])
        assert sa[0].decode("utf-8") == "Maceió"
        assert sa[2].decode("utf-8") == "日本語"

    def test_len_and_getitem(self):
        sa = StringArray.from_pylist(["ab", "cde"])
        assert len(sa) == 2
        assert sa[0] == b"ab"
        assert sa[1] == b"cde"

    def test_lengths(self):
        sa = StringArray.from_pylist(["ab", "", "cdef"])
        assert sa.lengths().tolist() == [2, 0, 4]

    def test_empty(self):
        sa = StringArray.empty(3)
        assert len(sa) == 3
        assert sa.to_pylist() == [b"", b"", b""]

    def test_take(self):
        sa = StringArray.from_pylist(["a", "bb", "ccc"])
        taken = sa.take(np.array([2, 0, 2]))
        assert taken.to_pylist() == [b"ccc", b"a", b"ccc"]

    def test_slice(self):
        sa = StringArray.from_pylist(["a", "bb", "ccc", "dddd"])
        sliced = sa.slice(1, 3)
        assert sliced.to_pylist() == [b"bb", b"ccc"]

    def test_nbytes_includes_offsets(self):
        sa = StringArray.from_pylist(["abcd"])
        assert sa.nbytes == 4 + 4  # payload + one 4-byte offset

    def test_equality(self):
        a = StringArray.from_pylist(["x", "y"])
        b = StringArray.from_pylist(["x", "y"])
        c = StringArray.from_pylist(["x", "z"])
        assert a == b
        assert a != c

    def test_bad_offsets_rejected(self):
        with pytest.raises(TypeMismatchError):
            StringArray(np.zeros(4, dtype=np.uint8), np.array([1, 4]))
        with pytest.raises(TypeMismatchError):
            StringArray(np.zeros(4, dtype=np.uint8), np.array([0, 3]))


class TestColumn:
    def test_int_column_coerces_dtype(self):
        col = Column.ints("a", [1, 2, 3])
        assert col.data.dtype == np.int32

    def test_double_column(self):
        col = Column.doubles("d", [1.5, 2.5])
        assert col.data.dtype == np.float64
        assert col.nbytes == 16

    def test_string_column_from_list_with_nones(self):
        col = Column.strings("s", ["a", None, "b"])
        assert col.nulls is not None
        assert col.null_mask().tolist() == [False, True, False]

    def test_string_column_requires_string_array(self):
        with pytest.raises(TypeMismatchError):
            Column("s", ColumnType.STRING, np.array([1, 2]))

    def test_null_mask_without_nulls(self):
        col = Column.ints("a", [1, 2])
        assert not col.null_mask().any()

    def test_slice_rebases_nulls(self):
        col = Column.ints("a", np.arange(10), RoaringBitmap.from_positions([2, 7]))
        sliced = col.slice(5, 10)
        assert sliced.nulls.to_array().tolist() == [2]
        assert len(sliced) == 5

    def test_slice_string(self):
        col = Column.strings("s", ["a", "b", "c", "d"])
        assert col.slice(1, 3).data.to_pylist() == [b"b", b"c"]

    def test_nbytes_int(self):
        assert Column.ints("a", np.arange(10)).nbytes == 40


class TestColumnsEqual:
    def test_equal_ints(self):
        a = Column.ints("a", [1, 2])
        assert columns_equal(a, Column.ints("b", [1, 2]))

    def test_different_values(self):
        assert not columns_equal(Column.ints("a", [1]), Column.ints("a", [2]))

    def test_different_types(self):
        assert not columns_equal(Column.ints("a", [1]), Column.doubles("a", [1.0]))

    def test_nan_bitwise(self):
        nan1 = np.array([float("nan")])
        assert columns_equal(Column.doubles("a", nan1), Column.doubles("a", nan1.copy()))

    def test_negative_zero_differs_from_zero(self):
        assert not columns_equal(
            Column.doubles("a", [0.0]), Column.doubles("a", [-0.0])
        )

    def test_null_sets_must_match(self):
        a = Column.ints("a", [0, 1], RoaringBitmap.from_positions([0]))
        b = Column.ints("a", [0, 1])
        assert not columns_equal(a, b)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.binary(max_size=20), max_size=50))
def test_property_string_array_round_trip(values):
    sa = StringArray.from_pylist(values)
    assert sa.to_pylist() == values
    assert sa.nbytes == sum(len(v) for v in values) + 4 * len(values)


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.binary(max_size=10), min_size=1, max_size=30),
    st.data(),
)
def test_property_take_matches_python_indexing(values, data):
    sa = StringArray.from_pylist(values)
    indices = data.draw(
        st.lists(st.integers(0, len(values) - 1), max_size=40)
    )
    taken = sa.take(np.array(indices, dtype=np.int64))
    assert taken.to_pylist() == [values[i] for i in indices]
