"""Sticky cross-block scheme selection (``BtrBlocksConfig.sticky_selection``)."""

import numpy as np
import pytest

from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.core.selector import SelectionCache
from repro.core.relation import Relation
from repro.core.stats import compute_stats
from repro.encodings.base import get_scheme
from repro.encodings.base import SchemeId
from repro.observe import (
    MetricsRegistry,
    SelectionDecision,
    SelectionTrace,
    use_registry,
    use_trace,
)
from repro.parallel import compress_relation_parallel
from repro.types import Column, ColumnType, columns_equal


def sticky_config(**overrides) -> BtrBlocksConfig:
    return BtrBlocksConfig(block_size=1000, sticky_selection=True, **overrides)


@pytest.fixture
def runs_relation(rng):
    """10 similar blocks of run-heavy integers (ideal sticky workload)."""
    return Relation("t", [Column.ints("a", np.repeat(rng.integers(0, 50, 500), 20))])


class TestStickyCompression:
    def test_hits_recorded_and_round_trip_exact(self, runs_relation):
        registry, trace = MetricsRegistry(), SelectionTrace()
        with use_registry(registry), use_trace(trace):
            compressed = compress_relation(runs_relation, sticky_config())
        counters = registry.snapshot()["counters"]
        blocks = len(compressed.columns[0].blocks)
        assert blocks == 10
        assert counters.get("selector.sticky.hits", 0) == blocks - 1
        assert counters.get("selector.sticky.misses", 0) == 1
        cached = [d for d in trace.decisions() if d.cached]
        assert len(cached) == blocks - 1
        assert all(d.top_level for d in cached)
        back = decompress_relation(compressed)
        assert columns_equal(runs_relation.columns[0], back.columns[0])

    def test_revalidates_every_n_reuses(self, runs_relation):
        registry = MetricsRegistry()
        with use_registry(registry):
            compress_relation(runs_relation, sticky_config(sticky_revalidate_every=3))
        counters = registry.snapshot()["counters"]
        # 10 blocks: full selection on block 0, then hit/hit/hit-revalidate
        # cycles; every re-validation is also counted as a miss.
        assert counters.get("selector.sticky.revalidations", 0) == 2
        assert counters.get("selector.sticky.misses", 0) == 3
        assert counters.get("selector.sticky.hits", 0) == 7

    def test_stat_drift_misses_instead_of_reusing(self, rng):
        # First half: long runs (RLE territory); second half: high-entropy
        # values whose stats are far outside the similarity tolerances.
        runs = np.repeat(rng.integers(0, 50, 250), 20)
        noise = rng.integers(0, 2**30, 5000)
        relation = Relation("t", [Column.ints("a", np.concatenate([runs, noise]))])
        registry, trace = MetricsRegistry(), SelectionTrace()
        with use_registry(registry), use_trace(trace):
            compressed = compress_relation(relation, sticky_config())
        counters = registry.snapshot()["counters"]
        assert counters.get("selector.sticky.misses", 0) >= 2
        back = decompress_relation(compressed)
        assert columns_equal(relation.columns[0], back.columns[0])

    def test_one_value_never_reused_for_nonconstant_blocks(self, rng):
        # Block 0 is constant (picks one_value, which is lossy on anything
        # else); later blocks have two distinct values. A sticky hit there
        # would silently corrupt data, so lookup must re-check viability.
        constant = np.full(1000, 7)
        varied = rng.integers(0, 2, 9000) * 1000 + 7
        relation = Relation("t", [Column.ints("a", np.concatenate([constant, varied]))])
        compressed = compress_relation(relation, sticky_config())
        back = decompress_relation(compressed)
        assert columns_equal(relation.columns[0], back.columns[0])

    def test_sticky_parallel_round_trip(self, runs_relation):
        registry = MetricsRegistry()
        with use_registry(registry):
            compressed = compress_relation_parallel(
                runs_relation, sticky_config(), max_workers=4
            )
        counters = registry.snapshot()["counters"]
        total = counters.get("selector.sticky.hits", 0) + counters.get(
            "selector.sticky.misses", 0
        )
        assert total == len(compressed.columns[0].blocks)
        back = decompress_relation(compressed)
        assert columns_equal(runs_relation.columns[0], back.columns[0])


class TestSelectionCache:
    def _stats(self, rng):
        return compute_stats(np.repeat(rng.integers(0, 50, 50), 20), ColumnType.INTEGER)

    def test_invalidates_on_achieved_ratio_drift(self, rng):
        config = sticky_config()
        cache = SelectionCache(config)
        stats = self._stats(rng)
        rle = get_scheme(SchemeId.RLE_INT)
        registry = MetricsRegistry()
        with use_registry(registry):
            cache.store(ColumnType.INTEGER, stats, rle, estimated_ratio=10.0)
            baseline = SelectionDecision(
                column="a", block=0, ctype="integer", depth=3,
                value_count=1000, input_bytes=8000, sample_count=640,
            )
            baseline.finish(800)  # achieved 10x: becomes the drift baseline
            cache.observe(baseline)
            assert cache.lookup(ColumnType.INTEGER, stats) is not None

            drifted = SelectionDecision(
                column="a", block=5, ctype="integer", depth=3,
                value_count=1000, input_bytes=8000, sample_count=0, cached=True,
            )
            drifted.finish(4000)  # achieved 2x < 0.7 * 10x: entry must go
            cache.observe(drifted)
            assert cache.lookup(ColumnType.INTEGER, stats) is None
        counters = registry.snapshot()["counters"]
        assert counters.get("selector.sticky.invalidations", 0) == 1

    def test_lookup_miss_without_entry(self, rng):
        registry = MetricsRegistry()
        with use_registry(registry):
            cache = SelectionCache(sticky_config())
            assert cache.lookup(ColumnType.INTEGER, self._stats(rng)) is None
        assert registry.snapshot()["counters"].get("selector.sticky.misses") == 1


def test_sticky_off_by_default(runs_relation):
    registry = MetricsRegistry()
    with use_registry(registry):
        compress_relation(runs_relation)
    counters = registry.snapshot()["counters"]
    assert "selector.sticky.hits" not in counters
    assert "selector.sticky.misses" not in counters
