"""Tests for the simulated cloud substrate (object store, cost model, scans)."""

import numpy as np
import pytest

from repro.cloud import PricingModel, ScanCostModel, SimulatedObjectStore
from repro.cloud.scan import (
    scan_btrblocks_columns,
    scan_parquet_like_columns,
    upload_btrblocks,
    upload_parquet_like,
)
from repro.core.compressor import compress_relation
from repro.core.relation import Relation
from repro.exceptions import FormatError
from repro.formats import btrblocks_adapter, parquet_adapter
from repro.types import Column


@pytest.fixture
def relation(rng):
    return Relation("sales", [
        Column.ints("id", rng.integers(0, 100, 4000)),
        Column.doubles("price", np.round(rng.uniform(0, 100, 4000), 2)),
        Column.strings("region", [["north", "south", "east"][i % 3] for i in range(4000)]),
    ])


class TestPricing:
    def test_paper_constants(self):
        pricing = PricingModel()
        assert pricing.ec2_usd_per_hour == 3.89
        assert pricing.s3_usd_per_1000_get == 0.0004
        assert pricing.chunk_bytes == 16 * 1024 * 1024

    def test_request_cost(self):
        pricing = PricingModel()
        assert pricing.request_cost(1000) == pytest.approx(0.0004)

    def test_compute_cost(self):
        pricing = PricingModel()
        assert pricing.compute_cost(3600) == pytest.approx(3.89)

    def test_s3_rate_capped_by_client(self):
        pricing = PricingModel()
        assert pricing.s3_bytes_per_second == pytest.approx(91e9 / 8)


class TestObjectStore:
    def test_put_get(self):
        store = SimulatedObjectStore()
        store.put("k", b"hello")
        assert store.get("k") == b"hello"
        assert store.stats.get_requests == 1
        assert store.stats.bytes_downloaded == 5

    def test_missing_object_raises(self):
        with pytest.raises(FormatError):
            SimulatedObjectStore().get("nope")

    def test_range_get(self):
        store = SimulatedObjectStore()
        store.put("k", b"0123456789")
        assert store.get_range("k", 2, 3) == b"234"
        assert store.stats.bytes_downloaded == 3

    def test_chunked_get_counts_requests(self):
        pricing = PricingModel(chunk_bytes=4)
        store = SimulatedObjectStore(pricing=pricing)
        store.put("k", b"0123456789")
        assert store.get_chunked("k") == b"0123456789"
        assert store.stats.get_requests == 3  # ceil(10 / 4)

    def test_keys_prefix(self):
        store = SimulatedObjectStore()
        store.put_many({"a/1": b"", "a/2": b"", "b/1": b""})
        assert store.keys("a/") == ["a/1", "a/2"]

    def test_transfer_seconds_positive(self):
        store = SimulatedObjectStore()
        store.put("k", b"x" * 10_000)
        store.get("k")
        assert store.simulated_transfer_seconds() > 0


class TestCostModel:
    def test_network_bound_when_cpu_fast(self):
        model = ScanCostModel()
        metrics = model.simulate("fmt", 10**9, 10**8, measured_decompress_seconds=0.001)
        assert not metrics.cpu_bound
        assert metrics.t_c_gbit == pytest.approx(91.0, rel=0.01)

    def test_cpu_bound_when_decode_slow(self):
        model = ScanCostModel()
        metrics = model.simulate("fmt", 10**9, 10**8, measured_decompress_seconds=100.0)
        assert metrics.cpu_bound
        assert metrics.wall_seconds == pytest.approx(100.0 / 800.0)

    def test_requests_per_16mb(self):
        model = ScanCostModel()
        metrics = model.simulate("fmt", 10**9, 48 * 1024 * 1024, 0.0)
        assert metrics.requests == 3

    def test_cost_includes_requests_and_compute(self):
        model = ScanCostModel()
        metrics = model.simulate("fmt", 10**9, 10**8, 10.0)
        cost = model.cost_usd(metrics)
        expected = metrics.wall_seconds / 3600 * 3.89 + metrics.requests / 1000 * 0.0004
        assert cost == pytest.approx(expected)

    def test_measure_runs_real_formats(self, relation):
        model = ScanCostModel()
        metrics = model.measure([relation], btrblocks_adapter())
        assert metrics.compression_ratio > 1.5
        assert metrics.measured_decompress_seconds > 0

    def test_ratio_and_throughput_consistent(self):
        model = ScanCostModel()
        metrics = model.simulate("fmt", 4 * 10**8, 10**8, 50.0)
        assert metrics.t_r_gbit == pytest.approx(metrics.t_c_gbit * 4, rel=0.01)


class TestColumnScans:
    def test_btrblocks_column_scan(self, relation):
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        result = scan_btrblocks_columns(store, "sales", [1])
        assert result.requests >= 2  # metadata + at least one column chunk
        assert result.bytes_downloaded > 0
        assert result.dependent_round_trips == 2

    def test_parquet_column_scan_needs_three_round_trips(self, relation):
        store = SimulatedObjectStore()
        file = parquet_adapter("none")
        artifact = file.compress(relation)
        upload_parquet_like(store, "sales", artifact)
        result = scan_parquet_like_columns(store, "sales", ["price"])
        assert result.dependent_round_trips == 3
        assert result.requests == 3  # footer len + footer + one column range

    def test_btrblocks_downloads_less_for_single_column(self, relation):
        store = SimulatedObjectStore()
        compressed = compress_relation(relation)
        upload_btrblocks(store, compressed)
        btr = scan_btrblocks_columns(store, "sales", [1])
        total = sum(store.object_size(k) for k in store.keys("sales/"))
        assert btr.bytes_downloaded < total

    def test_column_scan_cost_positive(self, relation):
        store = SimulatedObjectStore()
        upload_btrblocks(store, compress_relation(relation))
        result = scan_btrblocks_columns(store, "sales", [0, 2])
        assert result.cost_usd(store) > 0
        assert result.seconds(store) > 0
