"""Tests for the shared-memory process execution backend.

The tentpole contract: the process pool must be *invisible* except for
speed — compressed bytes and decompressed values bit-identical to the
sequential path for every scheme family × NULL layout, counter totals in
parity, and a worker killed at any stage of any task yielding either the
typed :class:`WorkerDiedError` (``on_corrupt="raise"``) or a clean thread
fallback — never a hang, a torn column, or a leaked ``/dev/shm`` segment.
"""

from __future__ import annotations

import glob
import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import procpool
from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.core.relation import Relation
from repro.exceptions import WorkerDiedError
from repro.observe import MetricsRegistry, SelectionTrace, use_registry, use_trace
from repro.parallel import (
    collect_futures,
    compress_relation_parallel,
    decompress_relation_parallel,
    resolve_backend,
)
from repro.types import Column, ColumnType, StringArray

pytestmark = pytest.mark.skipif(
    not procpool.available(), reason="no multiprocessing start method"
)

ROWS = 2000
#: Small blocks so every column spans several (~4 at ROWS=2000) — the
#: worker-death matrix needs more than one task in flight.
CONFIG = BtrBlocksConfig(block_size=512)
WORKERS = 2

KILL_STAGES = ("fetch-handoff", "mid-decode", "pre-assemble")


def _scheme_columns() -> "dict[str, Column]":
    """One workload per scheme family, shaped to make that scheme win."""
    rng = np.random.default_rng(418)
    fastpfor = rng.integers(0, 64, ROWS)
    outliers = rng.random(ROWS) < 0.02
    fastpfor[outliers] = rng.integers(2**20, 2**28, int(outliers.sum()))
    vocab = [f"category-{i:04d}" for i in range(64)]
    return {
        "one_value": Column.ints("v", np.full(ROWS, 7, dtype=np.int64)),
        "rle": Column.ints("v", np.repeat(rng.integers(0, 50, ROWS // 20 + 1), 20)[:ROWS]),
        "frequency": Column.ints(
            "v", np.where(rng.random(ROWS) < 0.9, 42, rng.integers(0, 10_000, ROWS))
        ),
        "bitpack": Column.ints("v", rng.integers(0, 255, ROWS)),
        "fastpfor": Column.ints("v", fastpfor),
        "pseudodecimal": Column.doubles("v", np.round(rng.uniform(0, 10_000, ROWS), 2)),
        "dictionary": Column.strings(
            "v", [vocab[i] for i in rng.integers(0, len(vocab), ROWS)]
        ),
        "fsst": Column.strings(
            "v", [f"https://example.com/api/v2/item/{int(x):08x}" for x in
                  rng.integers(0, 2**31, ROWS)]
        ),
    }


NULL_LAYOUTS = {
    "no_nulls": None,
    "sparse_nulls": lambda n: np.arange(0, n, 97),
    "dense_nulls": lambda n: np.arange(0, n, 2),
}


def _with_nulls(column: Column, layout: str) -> Column:
    make = NULL_LAYOUTS[layout]
    if make is None:
        return column
    nulls = RoaringBitmap.from_positions(make(len(column)))
    return Column(column.name, column.ctype, column.data, nulls)


def _assert_bit_identical(a: Column, b: Column) -> None:
    assert a.name == b.name and a.ctype is b.ctype
    if a.ctype is ColumnType.STRING:
        assert isinstance(a.data, StringArray) and isinstance(b.data, StringArray)
        assert np.array_equal(a.data.offsets, b.data.offsets)
        assert np.array_equal(a.data.buffer, b.data.buffer)
    else:
        assert a.data.dtype == b.data.dtype
        assert a.data.tobytes() == b.data.tobytes()
    assert (a.nulls or RoaringBitmap()) == (b.nulls or RoaringBitmap())


def _assert_no_leaked_segments() -> None:
    """Every segment this process created must be unlinked again."""
    assert procpool._ACTIVE_SEGMENTS == set()
    if os.path.isdir("/dev/shm"):
        assert glob.glob(f"/dev/shm/btrb-{os.getpid()}-*") == []


_CASES = [(s, l) for s in _scheme_columns() for l in NULL_LAYOUTS]


@pytest.fixture(scope="module")
def columns():
    return _scheme_columns()


@pytest.fixture
def test_hooks():
    """Arm the fork-inherited failure hooks against a fresh pool.

    The hooks are copied into workers when the pool forks, so the warm pool
    (forked without them) must be discarded first; the teardown clears the
    hooks and discards the poisoned pool so later tests fork clean workers.
    """
    procpool.shutdown_pool()
    yield
    procpool._TEST_KILL = None
    procpool._TEST_INTERRUPT_AFTER_SUBMITS = None
    procpool.shutdown_pool()
    _assert_no_leaked_segments()


# -- bit-identity --------------------------------------------------------------


@pytest.mark.parametrize("scheme,layout", _CASES, ids=[f"{s}-{l}" for s, l in _CASES])
def test_process_backend_bit_identical(columns, scheme, layout):
    """Compressed bytes AND decompressed values match the sequential path."""
    relation = Relation("t", [_with_nulls(columns[scheme], layout)])
    sequential = compress_relation(relation, CONFIG)
    via_process = compress_relation_parallel(
        relation, CONFIG, max_workers=WORKERS, backend="process"
    )
    for seq_col, proc_col in zip(sequential.columns, via_process.columns):
        assert [b.data for b in seq_col.blocks] == [b.data for b in proc_col.blocks]
        assert [b.nulls for b in seq_col.blocks] == [b.nulls for b in proc_col.blocks]
        assert [b.checksum for b in seq_col.blocks] == [
            b.checksum for b in proc_col.blocks
        ]
    back = decompress_relation_parallel(
        sequential, max_workers=WORKERS, backend="process"
    )
    for a, b in zip(decompress_relation(sequential).columns, back.columns):
        _assert_bit_identical(a, b)
    _assert_no_leaked_segments()


def test_compress_counter_parity(columns):
    """Worker-side metric snapshots merge to the sequential totals."""
    relation = Relation("t", [columns["rle"], columns["pseudodecimal"], columns["fsst"]])
    seq_reg, par_reg = MetricsRegistry(), MetricsRegistry()
    seq_trace, par_trace = SelectionTrace(), SelectionTrace()
    with use_registry(seq_reg), use_trace(seq_trace):
        compress_relation(relation, CONFIG)
    with use_registry(par_reg), use_trace(par_trace):
        compress_relation_parallel(
            relation, CONFIG, max_workers=WORKERS, backend="process"
        )
    seq, par = seq_reg.snapshot()["counters"], par_reg.snapshot()["counters"]
    for name in (
        "compress.blocks", "compress.rows", "compress.input_bytes",
        "compress.output_bytes", "compress.columns", "selector.picks",
    ):
        assert par[name] == seq[name], name
    assert len(par_trace) == len(seq_trace)


# -- backend resolution --------------------------------------------------------


class TestResolveBackend:
    def test_defaults_to_config_backend(self):
        assert resolve_backend(None, BtrBlocksConfig()) == "thread"
        assert resolve_backend(None, None) == "thread"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown parallel backend"):
            resolve_backend("fiber")

    def test_auto_needs_multiple_workers(self):
        assert resolve_backend("auto", max_workers=1, task_count=10_000) == "thread"

    def test_auto_needs_enough_tasks(self):
        assert resolve_backend("auto", max_workers=4, task_count=1) == "thread"
        assert resolve_backend("auto", max_workers=4, task_count=10_000) == "process"

    def test_sticky_selection_stays_on_threads(self, columns):
        """Sticky caches are shared mutable state — never shipped to workers."""
        config = BtrBlocksConfig(block_size=512, sticky_selection=True)
        registry = MetricsRegistry()
        relation = Relation("t", [columns["rle"]])
        with use_registry(registry):
            compressed = compress_relation_parallel(
                relation, config, max_workers=WORKERS, backend="process"
            )
        counters = registry.snapshot()["counters"]
        assert counters["parallel.backend.sticky_fallbacks"] == 1
        assert counters["parallel.backend.thread.runs"] == 1
        assert "parallel.backend.process.runs" not in counters
        back = decompress_relation(compressed)
        _assert_bit_identical(relation.columns[0], back.columns[0])


# -- error semantics -----------------------------------------------------------


class TestCollectFutures:
    def test_raises_lowest_index_error(self):
        """The same failing inputs raise the same error, whatever the timing."""

        def task(i: int) -> int:
            if i in (1, 3):
                time.sleep(0.01 if i == 3 else 0.05)
                raise ValueError(f"task {i}")
            return i

        with ThreadPoolExecutor(max_workers=4) as pool:
            futures = [pool.submit(task, i) for i in range(5)]
            with pytest.raises(ValueError, match="task 1"):
                collect_futures(futures)
        # Nothing may still be running once collect_futures has raised.
        assert all(f.done() or f.cancelled() for f in futures)

    def test_empty_and_success(self):
        assert collect_futures([]) == []
        with ThreadPoolExecutor(max_workers=2) as pool:
            futures = [pool.submit(lambda i=i: i * i) for i in range(4)]
            assert collect_futures(futures) == [0, 1, 4, 9]


# -- worker-death matrix -------------------------------------------------------


class TestWorkerDeath:
    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_decompress_raise_mode_surfaces_typed_error(self, columns, stage, test_hooks):
        compressed = compress_relation(Relation("t", [columns["bitpack"]]), CONFIG)
        registry = MetricsRegistry()
        procpool._TEST_KILL = stage
        with use_registry(registry):
            with pytest.raises(WorkerDiedError):
                decompress_relation_parallel(
                    compressed, max_workers=WORKERS, backend="process",
                    on_corrupt="raise",
                )
        counters = registry.snapshot()["counters"]
        assert counters["parallel.backend.process.worker_deaths"] == 1
        _assert_no_leaked_segments()

    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_decompress_degraded_modes_fall_back_to_threads(
        self, columns, stage, test_hooks
    ):
        relation = Relation("t", [_with_nulls(columns["rle"], "sparse_nulls")])
        compressed = compress_relation(relation, CONFIG)
        registry = MetricsRegistry()
        procpool._TEST_KILL = stage
        with use_registry(registry):
            back = decompress_relation_parallel(
                compressed, max_workers=WORKERS, backend="process",
                on_corrupt="skip",
            )
        _assert_bit_identical(relation.columns[0], back.columns[0])
        counters = registry.snapshot()["counters"]
        assert counters["parallel.backend.process.worker_deaths"] == 1
        assert counters["parallel.backend.fallbacks"] == 1
        _assert_no_leaked_segments()

    @pytest.mark.parametrize("stage", KILL_STAGES)
    def test_compress_falls_back_bit_identically(self, columns, stage, test_hooks):
        """Compression inputs are untouched by a death — retry must match."""
        relation = Relation("t", [_with_nulls(columns["fsst"], "sparse_nulls")])
        sequential = compress_relation(relation, CONFIG)
        registry = MetricsRegistry()
        procpool._TEST_KILL = stage
        with use_registry(registry):
            recovered = compress_relation_parallel(
                relation, CONFIG, max_workers=WORKERS, backend="process"
            )
        for seq_col, rec_col in zip(sequential.columns, recovered.columns):
            assert [b.data for b in seq_col.blocks] == [b.data for b in rec_col.blocks]
        counters = registry.snapshot()["counters"]
        assert counters["parallel.backend.process.worker_deaths"] == 1
        assert counters["parallel.backend.fallbacks"] == 1
        _assert_no_leaked_segments()

    def test_interrupt_mid_submit_leaks_nothing(self, columns, test_hooks):
        """A Ctrl-C between submits still unlinks every segment."""
        compressed = compress_relation(Relation("t", [columns["bitpack"]]), CONFIG)
        procpool._TEST_INTERRUPT_AFTER_SUBMITS = 1
        with pytest.raises(KeyboardInterrupt):
            procpool.decompress_relation_process(compressed, max_workers=WORKERS)
        _assert_no_leaked_segments()

    def test_segments_unlinked_after_success(self, columns):
        compressed = compress_relation(Relation("t", [columns["bitpack"]]), CONFIG)
        decompress_relation_parallel(compressed, max_workers=WORKERS, backend="process")
        _assert_no_leaked_segments()


# -- pool lifecycle ------------------------------------------------------------


class TestPoolLifecycle:
    def test_pool_is_reused_while_worker_count_matches(self, columns):
        procpool.shutdown_pool()
        compressed = compress_relation(Relation("t", [columns["rle"]]), CONFIG)
        registry = MetricsRegistry()
        with use_registry(registry):
            for _ in range(3):
                decompress_relation_parallel(
                    compressed, max_workers=WORKERS, backend="process"
                )
        counters = registry.snapshot()["counters"]
        assert counters["parallel.backend.process.pool_starts"] == 1
        assert counters["parallel.backend.process.pool_reuses"] == 2
        assert counters["parallel.backend.process.runs"] == 3

    def test_changing_worker_count_restarts_pool(self, columns):
        procpool.shutdown_pool()
        compressed = compress_relation(Relation("t", [columns["rle"]]), CONFIG)
        registry = MetricsRegistry()
        with use_registry(registry):
            decompress_relation_parallel(compressed, max_workers=2, backend="process")
            decompress_relation_parallel(compressed, max_workers=3, backend="process")
        assert registry.snapshot()["counters"]["parallel.backend.process.pool_starts"] == 2

    def test_report_rolls_up_backend_activity(self, columns):
        from repro.observe.report import build_report

        procpool.shutdown_pool()
        compressed = compress_relation(Relation("t", [columns["rle"]]), CONFIG)
        registry = MetricsRegistry()
        with use_registry(registry):
            decompress_relation_parallel(
                compressed, max_workers=WORKERS, backend="process"
            )
        report = build_report(registry, SelectionTrace())
        parallel = report["parallel"]
        assert parallel["backend_runs"]["process"] == 1
        assert parallel["process_pool"]["starts"] == 1
        assert parallel["process_pool"]["worker_deaths"] == 0
        assert parallel["shared_memory"]["segments"] == 2
        assert parallel["shared_memory"]["unlinked"] == 2


# -- remote scans --------------------------------------------------------------


@pytest.fixture(scope="module")
def remote_store(columns):
    from repro.cloud import SimulatedObjectStore, TableWriter

    relation = Relation("events", [
        Column.ints("ids", np.arange(ROWS, dtype=np.int64)),
        _with_nulls(columns["pseudodecimal"], "sparse_nulls"),
    ])
    compressed = compress_relation(relation, CONFIG)
    store = SimulatedObjectStore()
    TableWriter(store).write(compressed)
    return store, relation


class TestRemoteScans:
    def test_batch_scan_matches_across_backends(self, remote_store):
        from repro.cloud import RemoteTable

        store, relation = remote_store
        plain = RemoteTable.open(store, "events").scan()
        via_process = RemoteTable.open(
            store, "events", parallel_backend="process", decode_workers=WORKERS
        ).scan()
        for a, b in zip(plain.columns, via_process.columns):
            _assert_bit_identical(a, b)
        _assert_no_leaked_segments()

    def test_pipelined_scan_matches_across_backends(self, remote_store):
        from repro.cloud import RemoteTable

        store, relation = remote_store
        plain, _ = RemoteTable.open(store, "events").scan_pipelined()
        via_process, _ = RemoteTable.open(
            store, "events", parallel_backend="process", decode_workers=WORKERS
        ).scan_pipelined()
        for a, b in zip(plain.columns, via_process.columns):
            _assert_bit_identical(a, b)
        _assert_no_leaked_segments()

    def test_pipelined_scan_survives_worker_death(self, remote_store, test_hooks):
        """Block bytes are intact in the parent: death means redecode, not
        failure — the scan completes with identical results."""
        from repro.cloud import RemoteTable

        store, relation = remote_store
        plain, _ = RemoteTable.open(store, "events").scan_pipelined()
        registry = MetricsRegistry()
        procpool._TEST_KILL = "mid-decode"
        with use_registry(registry):
            recovered, _ = RemoteTable.open(
                store, "events", parallel_backend="process", decode_workers=WORKERS
            ).scan_pipelined()
        for a, b in zip(plain.columns, recovered.columns):
            _assert_bit_identical(a, b)
        assert registry.snapshot()["counters"]["parallel.backend.fallbacks"] >= 1
        _assert_no_leaked_segments()
