"""Tests for predicate evaluation over compressed blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import RoaringBitmap
from repro.core.compressor import compress_block, compress_column
from repro.core.config import BtrBlocksConfig
from repro.encodings.base import SchemeId
from repro.encodings.wire import unwrap
from repro.query import (
    Between,
    Equals,
    GreaterThan,
    In,
    IsNull,
    LessThan,
    filter_column,
    scan_block,
    scan_column,
)
from repro.types import Column, ColumnType, StringArray


def reference_mask(values, predicate, null_mask=None):
    """Decompressed-domain oracle for any predicate."""
    mask = np.asarray(predicate.evaluate(values), dtype=bool)
    if null_mask is not None:
        mask &= ~null_mask
    return mask


class TestPredicates:
    def test_equals_numeric(self):
        assert Equals(5).evaluate(np.array([4, 5, 6])).tolist() == [False, True, False]

    def test_equals_string(self):
        sa = StringArray.from_pylist(["a", "b"])
        assert Equals("a").evaluate(sa).tolist() == [True, False]

    def test_between(self):
        assert Between(2, 4).evaluate(np.array([1, 2, 3, 5])).tolist() == [False, True, True, False]

    def test_greater_less(self):
        arr = np.array([1.0, 2.0, 3.0])
        assert GreaterThan(2.0).evaluate(arr).tolist() == [False, False, True]
        assert GreaterThan(2.0, inclusive=True).evaluate(arr).tolist() == [False, True, True]
        assert LessThan(2.0).evaluate(arr).tolist() == [True, False, False]

    def test_in(self):
        assert In([1, 3]).evaluate(np.array([1, 2, 3])).tolist() == [True, False, True]

    def test_range_pruning(self):
        assert not Equals(10).may_match_range(0, 5)
        assert Equals(3).may_match_range(0, 5)
        assert not Between(10, 20).may_match_range(0, 5)
        assert not GreaterThan(5).may_match_range(0, 5)
        assert GreaterThan(5, inclusive=True).may_match_range(0, 5)
        assert not LessThan(0).may_match_range(0, 5)
        assert not In([7, 9]).may_match_range(0, 5)
        assert In([3]).may_match_range(0, 5)


class TestScanBlockFastPaths:
    def _assert_root(self, blob, expected_ids):
        scheme_id, _, _ = unwrap(blob)
        assert scheme_id in expected_ids

    def test_one_value_block(self):
        values = np.full(5000, 7, dtype=np.int32)
        blob = compress_block(values, ColumnType.INTEGER)
        self._assert_root(blob, {SchemeId.ONE_VALUE_INT})
        assert scan_block(blob, ColumnType.INTEGER, Equals(7)).all()
        assert not scan_block(blob, ColumnType.INTEGER, Equals(8)).any()

    def test_dictionary_block(self, rng):
        # Few distinct values spread over a huge range: bit-packing needs
        # ~30 bits/value while dictionary codes need 3, so Dict must win.
        pool = np.array([3, 1_000_003, 77_000_005, 2_000_000_011, 104, 105], dtype=np.int64)
        values = pool[rng.integers(0, pool.size, 20_000)].astype(np.int32)
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.DICT_INT, SchemeId.FAST_BP128, SchemeId.UNCOMPRESSED_INT,
        }))
        blob = compress_block(values, ColumnType.INTEGER, config)
        self._assert_root(blob, {SchemeId.DICT_INT})
        predicate = Between(103, 105)
        expected = reference_mask(values, predicate)
        assert np.array_equal(scan_block(blob, ColumnType.INTEGER, predicate), expected)

    def test_dictionary_with_rle_codes(self):
        values = np.repeat(np.arange(50, dtype=np.int32) % 7, 400)
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.DICT_INT, SchemeId.RLE_INT, SchemeId.FAST_BP128,
            SchemeId.UNCOMPRESSED_INT,
        }))
        blob = compress_block(values, ColumnType.INTEGER, config)
        predicate = Equals(3)
        expected = reference_mask(values, predicate)
        assert np.array_equal(scan_block(blob, ColumnType.INTEGER, predicate), expected)

    def test_rle_block(self):
        values = np.repeat(np.array([1.5, 2.5, 1.5]), 2000)
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.RLE_DOUBLE, SchemeId.UNCOMPRESSED_DOUBLE, SchemeId.UNCOMPRESSED_INT,
            SchemeId.FAST_BP128,
        }))
        blob = compress_block(values, ColumnType.DOUBLE, config)
        self._assert_root(blob, {SchemeId.RLE_DOUBLE})
        predicate = Equals(2.5)
        assert np.array_equal(
            scan_block(blob, ColumnType.DOUBLE, predicate),
            reference_mask(values, predicate),
        )

    def test_frequency_block(self, rng):
        values = np.zeros(10_000)
        exceptions = rng.random(10_000) >= 0.8
        values[exceptions] = rng.standard_normal(int(exceptions.sum())) + 100
        config = BtrBlocksConfig(allowed_schemes=frozenset({
            SchemeId.FREQUENCY_DOUBLE, SchemeId.UNCOMPRESSED_DOUBLE,
        }))
        blob = compress_block(values, ColumnType.DOUBLE, config)
        self._assert_root(blob, {SchemeId.FREQUENCY_DOUBLE})
        predicate = GreaterThan(50.0)
        assert np.array_equal(
            scan_block(blob, ColumnType.DOUBLE, predicate),
            reference_mask(values, predicate),
        )

    def test_string_dictionary_block(self):
        values = StringArray.from_pylist([["north", "south", "east"][i % 3] for i in range(6000)])
        blob = compress_block(values, ColumnType.STRING)
        predicate = Equals("south")
        assert np.array_equal(
            scan_block(blob, ColumnType.STRING, predicate),
            reference_mask(values, predicate),
        )

    def test_fallback_path(self, rng):
        values = rng.standard_normal(5000)
        blob = compress_block(values, ColumnType.DOUBLE)  # uncompressed root
        predicate = GreaterThan(0.0)
        assert np.array_equal(
            scan_block(blob, ColumnType.DOUBLE, predicate),
            reference_mask(values, predicate),
        )


class TestNullSemantics:
    def test_value_predicates_exclude_nulls(self):
        values = np.zeros(100, dtype=np.int32)
        nulls = RoaringBitmap.from_positions([3, 50])
        blob = compress_block(values, ColumnType.INTEGER)
        mask = scan_block(blob, ColumnType.INTEGER, Equals(0), nulls)
        assert not mask[3] and not mask[50]
        assert mask.sum() == 98

    def test_is_null_matches_only_nulls(self):
        values = np.zeros(100, dtype=np.int32)
        nulls = RoaringBitmap.from_positions([7])
        blob = compress_block(values, ColumnType.INTEGER)
        mask = scan_block(blob, ColumnType.INTEGER, IsNull(), nulls)
        assert mask.sum() == 1 and mask[7]

    def test_is_null_without_nulls(self):
        blob = compress_block(np.zeros(10, dtype=np.int32), ColumnType.INTEGER)
        assert not scan_block(blob, ColumnType.INTEGER, IsNull(), None).any()


class TestColumnScan:
    def test_scan_column_across_blocks(self, rng, small_config):
        values = rng.integers(0, 100, 3500).astype(np.int32)
        column = Column.ints("c", values)
        compressed = compress_column(column, small_config)
        predicate = LessThan(10)
        result = scan_column(compressed, predicate)
        expected = np.nonzero(reference_mask(values, predicate))[0]
        assert np.array_equal(result.to_array(), expected)

    def test_filter_column(self, rng, small_config):
        values = rng.integers(0, 50, 2500).astype(np.int32)
        compressed = compress_column(Column.ints("c", values), small_config)
        out = filter_column(compressed, Equals(25))
        assert np.array_equal(np.asarray(out.data), values[values == 25])

    def test_filter_string_column(self, small_config):
        values = [["red", "green", "blue"][i % 3] for i in range(1500)]
        compressed = compress_column(Column.strings("c", values), small_config)
        out = filter_column(compressed, Equals("green"))
        assert len(out) == 500
        assert set(out.data.to_pylist()) == {b"green"}

    def test_filter_no_matches(self, rng, small_config):
        compressed = compress_column(
            Column.ints("c", rng.integers(0, 5, 2000)), small_config
        )
        out = filter_column(compressed, Equals(99))
        assert len(out) == 0


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(-50, 50), min_size=1, max_size=300),
    st.integers(-50, 50),
)
def test_property_scan_matches_decompressed_oracle(values, needle):
    arr = np.array(values, dtype=np.int32)
    blob = compress_block(arr, ColumnType.INTEGER)
    for predicate in (Equals(needle), GreaterThan(needle), Between(needle, needle + 10)):
        assert np.array_equal(
            scan_block(blob, ColumnType.INTEGER, predicate),
            reference_mask(arr, predicate),
        )
