"""Tests for the block statistics pass."""

import numpy as np

from repro.core.stats import column_stats, compute_stats
from repro.types import Column, ColumnType, StringArray


class TestIntegerStats:
    def test_basic(self):
        stats = compute_stats(np.array([1, 1, 2, 2, 2, 3], dtype=np.int32), ColumnType.INTEGER)
        assert stats.count == 6
        assert stats.distinct_count == 3
        assert stats.min_value == 1
        assert stats.max_value == 3
        assert stats.avg_run_length == 2.0

    def test_all_equal(self):
        stats = compute_stats(np.full(100, 7, dtype=np.int32), ColumnType.INTEGER)
        assert stats.distinct_count == 1
        assert stats.avg_run_length == 100.0
        assert stats.unique_fraction == 0.01

    def test_all_unique(self):
        stats = compute_stats(np.arange(50, dtype=np.int32), ColumnType.INTEGER)
        assert stats.unique_fraction == 1.0
        assert stats.avg_run_length == 1.0

    def test_empty(self):
        stats = compute_stats(np.empty(0, dtype=np.int32), ColumnType.INTEGER)
        assert stats.count == 0
        assert stats.unique_fraction == 0.0


class TestDoubleStats:
    def test_nan_counts_as_one_distinct(self):
        values = np.array([np.nan, np.nan, 1.0])
        stats = compute_stats(values, ColumnType.DOUBLE)
        assert stats.distinct_count == 2

    def test_min_max_skip_non_finite(self):
        values = np.array([np.inf, -np.inf, 5.0, 1.0])
        stats = compute_stats(values, ColumnType.DOUBLE)
        assert stats.min_value == 1.0
        assert stats.max_value == 5.0

    def test_negative_zero_distinct_from_zero(self):
        stats = compute_stats(np.array([0.0, -0.0]), ColumnType.DOUBLE)
        assert stats.distinct_count == 2

    def test_nan_runs_counted_bitwise(self):
        values = np.array([np.nan] * 4 + [1.0] * 4)
        stats = compute_stats(values, ColumnType.DOUBLE)
        assert stats.avg_run_length == 4.0


class TestStringStats:
    def test_basic(self):
        sa = StringArray.from_pylist(["a", "a", "b", "b", "b", "c"])
        stats = compute_stats(sa, ColumnType.STRING)
        assert stats.count == 6
        assert stats.distinct_count == 3
        assert stats.avg_run_length == 2.0
        assert stats.total_string_bytes == 6
        assert stats.avg_string_length == 1.0

    def test_empty(self):
        stats = compute_stats(StringArray.empty(0), ColumnType.STRING)
        assert stats.count == 0

    def test_unicode_lengths_in_bytes(self):
        sa = StringArray.from_pylist(["é"])  # 2 UTF-8 bytes
        stats = compute_stats(sa, ColumnType.STRING)
        assert stats.total_string_bytes == 2


class TestColumnStats:
    def test_includes_null_count(self):
        from repro.bitmap import RoaringBitmap

        col = Column.ints("a", np.arange(10), RoaringBitmap.from_positions([1, 2]))
        stats = column_stats(col)
        assert stats.null_count == 2
        assert stats.count == 10
