"""Tests for sampling strategies (paper Section 3.1)."""

import numpy as np
import pytest

from repro.core.sampling import (
    DEFAULT_STRATEGY,
    FIGURE5_STRATEGIES,
    SamplingStrategy,
    take_sample,
)
from repro.types import ColumnType, StringArray


class TestStrategy:
    def test_default_is_10x64(self):
        assert DEFAULT_STRATEGY.runs == 10
        assert DEFAULT_STRATEGY.run_length == 64
        assert DEFAULT_STRATEGY.sample_size == 640

    def test_figure5_strategies_all_sample_640(self):
        assert all(s.sample_size == 640 for s in FIGURE5_STRATEGIES)

    def test_labels(self):
        assert SamplingStrategy(1, 640).label == "Range"
        assert SamplingStrategy(640, 1).label == "Single"
        assert SamplingStrategy(10, 64).label == "10x64"

    def test_indices_within_bounds(self):
        rng = np.random.default_rng(0)
        for strategy in FIGURE5_STRATEGIES:
            for _ in range(5):
                idx = strategy.indices(64_000, rng)
                assert idx.min() >= 0
                assert idx.max() < 64_000
                assert idx.size == strategy.sample_size

    def test_small_block_returns_everything(self):
        rng = np.random.default_rng(0)
        idx = DEFAULT_STRATEGY.indices(100, rng)
        assert np.array_equal(idx, np.arange(100))

    def test_runs_are_contiguous(self):
        rng = np.random.default_rng(0)
        strategy = SamplingStrategy(4, 16)
        idx = strategy.indices(10_000, rng)
        pieces = idx.reshape(4, 16)
        for piece in pieces:
            assert np.array_equal(np.diff(piece), np.ones(15))

    def test_runs_land_in_distinct_parts(self):
        rng = np.random.default_rng(0)
        strategy = SamplingStrategy(10, 64)
        idx = strategy.indices(64_000, rng)
        part = 64_000 // 10
        starts = idx.reshape(10, 64)[:, 0]
        assert all(part * i <= s < part * (i + 1) for i, s in enumerate(starts))


class TestTakeSample:
    def test_numeric_sample(self):
        rng = np.random.default_rng(0)
        values = np.arange(64_000, dtype=np.int32)
        sample = take_sample(values, ColumnType.INTEGER, DEFAULT_STRATEGY, rng)
        assert sample.size == 640
        assert np.all(np.isin(sample, values))

    def test_string_sample(self):
        rng = np.random.default_rng(0)
        sa = StringArray.from_pylist([f"s{i}" for i in range(5000)])
        sample = take_sample(sa, ColumnType.STRING, DEFAULT_STRATEGY, rng)
        assert len(sample) == 640

    def test_small_input_passthrough(self):
        rng = np.random.default_rng(0)
        values = np.arange(10, dtype=np.int32)
        sample = take_sample(values, ColumnType.INTEGER, DEFAULT_STRATEGY, rng)
        assert sample is values

    @pytest.mark.parametrize("count", [641, 1000, 64_000])
    def test_sample_fraction_near_one_percent(self, count):
        rng = np.random.default_rng(0)
        sample = take_sample(
            np.zeros(count, dtype=np.int32), ColumnType.INTEGER, DEFAULT_STRATEGY, rng
        )
        assert sample.size == 640
