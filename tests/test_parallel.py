"""Tests for thread-parallel compression/decompression."""

import os
import time

import numpy as np
import pytest

from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.core.relation import Relation
from repro.observe import MetricsRegistry, SelectionTrace, use_registry, use_trace
from repro.parallel import compress_relation_parallel, decompress_relation_parallel
from repro.types import Column, columns_equal


@pytest.fixture
def relation(rng):
    return Relation("t", [
        Column.ints("a", np.repeat(rng.integers(0, 20, 100), 30)),
        Column.doubles("b", np.round(rng.uniform(0, 10, 3000), 2)),
        Column.strings("c", [["x", "yy", "zzz"][i % 3] for i in range(3000)]),
        Column.ints("d", rng.integers(0, 2**30, 3000)),
    ])


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_compression_matches_sequential(relation, workers):
    sequential = compress_relation(relation)
    parallel = compress_relation_parallel(relation, max_workers=workers)
    assert [c.name for c in parallel.columns] == [c.name for c in sequential.columns]
    for seq_col, par_col in zip(sequential.columns, parallel.columns):
        assert [b.data for b in seq_col.blocks] == [b.data for b in par_col.blocks]
        assert [b.nulls for b in seq_col.blocks] == [b.nulls for b in par_col.blocks]


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_decompression_round_trip(relation, workers):
    compressed = compress_relation_parallel(relation, max_workers=workers)
    back = decompress_relation_parallel(compressed, max_workers=workers)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_parallel_decompression_matches_sequential_bytes(relation, workers):
    """Decompressed values are bit-identical to the sequential decoder's."""
    compressed = compress_relation(relation)
    sequential = decompress_relation(compressed)
    parallel = decompress_relation_parallel(compressed, max_workers=workers)
    for a, b in zip(sequential.columns, parallel.columns):
        assert columns_equal(a, b)


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_metrics_accumulate_under_concurrency(relation, workers):
    """Totals recorded by concurrent workers must equal the sequential ones.

    Runs the same workload sequentially and in parallel against two fresh
    registries; every deterministic counter (bytes, rows, blocks, columns,
    picks) must agree exactly, and the trace must carry one top-level
    decision per block regardless of scheduling.
    """
    seq_reg, seq_trace = MetricsRegistry(), SelectionTrace()
    with use_registry(seq_reg), use_trace(seq_trace):
        compressed = compress_relation(relation)
        decompress_relation(compressed)

    par_reg, par_trace = MetricsRegistry(), SelectionTrace()
    with use_registry(par_reg), use_trace(par_trace):
        compressed = compress_relation_parallel(relation, max_workers=workers)
        decompress_relation_parallel(compressed, max_workers=workers)

    seq, par = seq_reg.snapshot()["counters"], par_reg.snapshot()["counters"]
    deterministic = [
        "compress.blocks", "compress.rows", "compress.input_bytes",
        "compress.output_bytes", "compress.columns", "selector.picks",
        "decompress.columns", "decompress.blocks", "decompress.rows",
        "decompress.input_bytes",
    ]
    for name in deterministic:
        assert par.get(name) == seq.get(name), name

    total_blocks = sum(len(c.blocks) for c in compressed.columns)
    top_level = [d for d in par_trace.decisions() if d.top_level]
    assert len(top_level) == total_blocks
    assert {d.column for d in top_level} == {c.name for c in relation.columns}
    assert all(d.compressed_bytes for d in top_level)


def test_parallel_respects_config(relation):
    config = BtrBlocksConfig(max_cascade_depth=1, block_size=500)
    compressed = compress_relation_parallel(relation, config, max_workers=2)
    assert len(compressed.columns[0].blocks) == 6
    back = decompress_relation_parallel(compressed)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


def test_single_worker_degenerates_to_sequential(relation):
    compressed = compress_relation_parallel(relation, max_workers=1)
    back = decompress_relation(compressed)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


@pytest.fixture
def wide_relation(rng):
    """One 40,000-row column: block-level fan-out is the only parallelism."""
    return Relation("wide", [Column.ints("a", np.repeat(rng.integers(0, 1000, 2000), 20))])


@pytest.mark.parametrize("workers", [1, 2, 8])
def test_single_wide_column_bit_identity(wide_relation, workers, small_config):
    """(column, block) tasks: one wide column still matches sequential bytes."""
    sequential = compress_relation(wide_relation, small_config)
    parallel = compress_relation_parallel(wide_relation, small_config, max_workers=workers)
    assert len(parallel.columns[0].blocks) == 40
    assert [b.data for b in sequential.columns[0].blocks] == [
        b.data for b in parallel.columns[0].blocks
    ]


def test_inline_path_skips_pool_and_accumulates_metrics(relation):
    """``max_workers=1`` runs inline but records the same deterministic totals."""
    seq_reg = MetricsRegistry()
    with use_registry(seq_reg):
        compressed = compress_relation(relation)
        decompress_relation(compressed)

    inline_reg = MetricsRegistry()
    with use_registry(inline_reg):
        compressed = compress_relation_parallel(relation, max_workers=1)
        decompress_relation_parallel(compressed, max_workers=1)

    seq, inline = seq_reg.snapshot()["counters"], inline_reg.snapshot()["counters"]
    assert inline.get("parallel.inline_runs") == 2  # one compress + one decompress
    for name in [
        "compress.blocks", "compress.rows", "compress.input_bytes",
        "compress.output_bytes", "compress.columns", "selector.picks",
        "decompress.columns", "decompress.blocks", "decompress.rows",
        "decompress.input_bytes",
    ]:
        assert inline.get(name) == seq.get(name), name


def test_single_block_relation_runs_inline(rng):
    """A one-task workload never pays for a pool, whatever max_workers says."""
    relation = Relation("tiny", [Column.ints("a", rng.integers(0, 100, 500))])
    registry = MetricsRegistry()
    with use_registry(registry):
        compressed = compress_relation_parallel(relation, max_workers=8)
        decompress_relation_parallel(compressed, max_workers=8)
    counters = registry.snapshot()["counters"]
    assert counters.get("parallel.inline_runs") == 2


def test_empty_relation_parallel():
    compressed = compress_relation_parallel(Relation("empty", []))
    back = decompress_relation_parallel(compressed)
    assert back.columns == []


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4, reason="parallel speedup needs >= 4 cores"
)
def test_four_workers_speed_up_wide_column_compression(rng):
    """Acceptance: 1M-row single-column compression >= 1.5x at 4 workers."""
    n = 1_000_000
    relation = Relation(
        "wide", [Column.ints("a", np.repeat(rng.integers(0, 1000, n // 20), 20))]
    )

    def best(workers: int) -> float:
        result = float("inf")
        for _ in range(3):
            started = time.perf_counter()
            compress_relation_parallel(relation, max_workers=workers)
            result = min(result, time.perf_counter() - started)
        return result

    t1, t4 = best(1), best(4)
    assert t1 / t4 >= 1.5, f"speedup {t1 / t4:.2f}x below 1.5x ({t1:.3f}s -> {t4:.3f}s)"
