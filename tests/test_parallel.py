"""Tests for thread-parallel compression/decompression."""

import numpy as np
import pytest

from repro.core.compressor import compress_relation
from repro.core.config import BtrBlocksConfig
from repro.core.decompressor import decompress_relation
from repro.core.relation import Relation
from repro.parallel import compress_relation_parallel, decompress_relation_parallel
from repro.types import Column, columns_equal


@pytest.fixture
def relation(rng):
    return Relation("t", [
        Column.ints("a", np.repeat(rng.integers(0, 20, 100), 30)),
        Column.doubles("b", np.round(rng.uniform(0, 10, 3000), 2)),
        Column.strings("c", [["x", "yy", "zzz"][i % 3] for i in range(3000)]),
        Column.ints("d", rng.integers(0, 2**30, 3000)),
    ])


def test_parallel_compression_matches_sequential(relation):
    sequential = compress_relation(relation)
    parallel = compress_relation_parallel(relation, max_workers=4)
    assert [c.name for c in parallel.columns] == [c.name for c in sequential.columns]
    for seq_col, par_col in zip(sequential.columns, parallel.columns):
        assert [b.data for b in seq_col.blocks] == [b.data for b in par_col.blocks]


def test_parallel_decompression_round_trip(relation):
    compressed = compress_relation_parallel(relation, max_workers=4)
    back = decompress_relation_parallel(compressed, max_workers=4)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


def test_parallel_respects_config(relation):
    config = BtrBlocksConfig(max_cascade_depth=1, block_size=500)
    compressed = compress_relation_parallel(relation, config, max_workers=2)
    assert len(compressed.columns[0].blocks) == 6
    back = decompress_relation_parallel(compressed)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)


def test_single_worker_degenerates_to_sequential(relation):
    compressed = compress_relation_parallel(relation, max_workers=1)
    back = decompress_relation(compressed)
    for a, b in zip(relation.columns, back.columns):
        assert columns_equal(a, b)
